//! Latency statistics and execution-time breakdowns.

use conduit_types::Duration;

/// Number of sub-buckets per power-of-two range. 64 sub-buckets bound the
/// relative quantization error of a recorded value by `1/64` (~1.6%).
const SUB_BUCKET_BITS: u32 = 6;
/// Sub-buckets per octave (and the width of the exact linear region).
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Largest exponent tracked with full sub-bucket resolution: values up to
/// `2^(MAX_EXPONENT + 1) - 1` picoseconds (~18 simulated minutes) land in a
/// real bucket; anything larger clamps into the final bucket (the exact
/// maximum is tracked separately, so `percentile(1.0)` stays exact).
const MAX_EXPONENT: u32 = 49;
/// Total bucket count of the fixed layout.
const BUCKET_COUNT: usize =
    (SUB_BUCKETS + (MAX_EXPONENT as u64 - SUB_BUCKET_BITS as u64 + 1) * SUB_BUCKETS) as usize;

/// Collects per-instruction (or per-request) latencies and answers
/// mean/percentile queries — the basis of the tail-latency comparison in
/// Figure 8 of the paper.
///
/// Samples are folded into a **fixed-bucket HDR-style histogram** (a linear
/// region below 64 ps, then 64 log-linear sub-buckets per power of two), so
/// memory stays constant (~11 KiB) no matter how many samples are recorded —
/// a requirement for million-request server runs. Quantile queries walk the
/// buckets without sorting and therefore need only `&self`. Recorded values
/// are quantized to at most `1/64` (~1.6%) relative error; the minimum,
/// maximum, count and mean are tracked exactly.
///
/// # Examples
///
/// ```
/// use conduit_sim::LatencyStats;
/// use conduit_types::Duration;
///
/// let mut stats = LatencyStats::new();
/// for i in 1..=100 {
///     stats.record(Duration::from_us(i as f64));
/// }
/// let p99 = stats.percentile(0.99);
/// assert!((p99.as_us() - 99.0).abs() / 99.0 < 1.0 / 64.0);
/// assert_eq!(stats.max(), Duration::from_us(100.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    counts: Vec<u32>,
    count: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats::new()
    }
}

impl LatencyStats {
    /// Creates an empty collector. The bucket array is allocated once, up
    /// front, and never grows.
    pub fn new() -> Self {
        LatencyStats {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            total: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
        }
    }

    /// The fixed number of histogram buckets (constant regardless of how
    /// many samples are recorded).
    pub const fn bucket_count() -> usize {
        BUCKET_COUNT
    }

    /// The bucket index a value in picoseconds falls into.
    fn bucket_index(ps: u64) -> usize {
        if ps < SUB_BUCKETS {
            return ps as usize;
        }
        let exponent = (63 - ps.leading_zeros()).min(MAX_EXPONENT);
        let shift = exponent - SUB_BUCKET_BITS;
        let sub = (ps >> shift).min(2 * SUB_BUCKETS - 1) - SUB_BUCKETS;
        (SUB_BUCKETS + (exponent - SUB_BUCKET_BITS) as u64 * SUB_BUCKETS + sub) as usize
    }

    /// The highest value (in picoseconds) that maps into `index` — the
    /// deterministic representative reported for quantiles, so bucketing
    /// never under-reports a tail.
    fn bucket_high(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_BUCKETS {
            return index;
        }
        let block = (index - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
        let exponent = SUB_BUCKET_BITS as u64 + block;
        let shift = exponent - SUB_BUCKET_BITS as u64;
        let low = (SUB_BUCKETS + sub) << shift;
        low + (1u64 << shift) - 1
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let idx = Self::bucket_index(latency.as_ps());
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = latency;
            self.max = latency;
        } else {
            self.min = self.min.min(latency);
            self.max = self.max.max(latency);
        }
        self.count += 1;
        // Saturating: a pathological (near-u64::MAX) sample must not poison
        // the whole collector.
        self.total = Duration::from_ps(self.total.as_ps().saturating_add(latency.as_ps()));
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.total = Duration::from_ps(self.total.as_ps().saturating_add(other.total.as_ps()));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency (zero if empty; exact — not quantized).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        self.total / self.count
    }

    /// Minimum latency (zero if empty; exact — not quantized).
    pub fn min(&self) -> Duration {
        self.min
    }

    /// Maximum latency (zero if empty; exact — not quantized).
    pub fn max(&self) -> Duration {
        self.max
    }

    /// The `p`-quantile latency (e.g. `0.99` for the 99th percentile,
    /// `0.9999` for the 99.99th). Returns zero if empty. Quantized to at most
    /// ~1.6% relative error; `p = 1.0` returns the exact maximum.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Duration {
        debug_assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((self.count as f64) * p).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c as u64;
            if seen >= rank {
                let rep = Duration::from_ps(Self::bucket_high(idx));
                return rep.min(self.max).max(self.min);
            }
        }
        self.max
    }
}

/// Cumulative request-lane statistics of one warm device: how many requests
/// its FIFO lane has served, how long the device was busy serving them, how
/// long it sat idle between open-loop arrivals, and how much arrival-relative
/// queueing those requests accumulated.
///
/// All times are **simulated** stream-clock time, so the numbers are
/// bit-identical regardless of how the scheduler interleaved lanes on real
/// CPU cores. The busy/idle split is what turns the per-request
/// queueing/service metrics into a device-level utilization instrument:
/// [`LaneStats::occupancy`] is the fraction of the lane's lifetime the device
/// spent serving requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneStats {
    /// Requests the lane has served (each [`record`](LaneStats::record) call
    /// is one request, regardless of its repeat count).
    pub requests: u64,
    /// Total time the device spent executing lane requests.
    pub busy: Duration,
    /// Total time the device sat idle waiting for the next arrival (open-loop
    /// gaps where a request arrived after the previous one finished).
    pub idle: Duration,
    /// Total arrival-relative queueing across requests (time spent waiting
    /// behind earlier requests of the same lane).
    pub queued: Duration,
}

impl LaneStats {
    /// Folds one served request into the counters.
    pub fn record(&mut self, idle: Duration, queued: Duration, busy: Duration) {
        self.requests += 1;
        self.busy += busy;
        self.idle += idle;
        self.queued += queued;
    }

    /// Folds another lane's counters into this one — the fleet-wide
    /// aggregation: merging every shard's lane counters and asking for
    /// [`occupancy`](LaneStats::occupancy) yields the busy fraction of the
    /// combined device time, exactly as if one collector had observed every
    /// lane.
    pub fn merge(&mut self, other: &LaneStats) {
        self.requests += other.requests;
        self.busy += other.busy;
        self.idle += other.idle;
        self.queued += other.queued;
    }

    /// Fraction of the lane's lifetime (busy + idle) the device spent
    /// serving requests; zero for an unused lane. Always in `[0, 1]` — a
    /// closed-loop lane (no idle gaps) reports exactly 1.
    pub fn occupancy(&self) -> f64 {
        let busy = self.busy.as_ps() as f64;
        let total = busy + self.idle.as_ps() as f64;
        if total == 0.0 {
            0.0
        } else {
            busy / total
        }
    }
}

/// Where an instruction's end-to-end time went — the stacked-bar breakdown of
/// Figure 4 (compute, host↔SSD data movement, SSD-internal data movement,
/// flash array reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBreakdown {
    /// Time spent computing on the chosen execution site.
    pub compute: Duration,
    /// Time spent moving data between host memory and the SSD.
    pub host_data_movement: Duration,
    /// Time spent moving data between SSD-internal locations (flash channel
    /// DMA, DRAM bus, controller SRAM staging).
    pub internal_data_movement: Duration,
    /// Time spent sensing (reading) or programming the flash array itself.
    pub flash_array: Duration,
}

impl CostBreakdown {
    /// An all-zero breakdown.
    pub fn zero() -> Self {
        CostBreakdown::default()
    }

    /// Total attributed time.
    pub fn total(&self) -> Duration {
        self.compute + self.host_data_movement + self.internal_data_movement + self.flash_array
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: CostBreakdown) {
        self.compute += other.compute;
        self.host_data_movement += other.host_data_movement;
        self.internal_data_movement += other.internal_data_movement;
        self.flash_array += other.flash_array;
    }

    /// Fractions of the total per category, in the order
    /// `(compute, host DM, internal DM, flash array)`. All zeros if empty.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total().as_ns();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.compute.as_ns() / total,
            self.host_data_movement.as_ns() / total,
            self.internal_data_movement.as_ns() / total,
            self.flash_array.as_ns() / total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Maximum relative quantization error of the histogram.
    const REL_ERR: f64 = 1.0 / 64.0;

    fn assert_close(actual: Duration, expected: Duration) {
        let e = expected.as_ps() as f64;
        let a = actual.as_ps() as f64;
        assert!(
            (a - e).abs() <= e * REL_ERR + 1.0,
            "got {actual}, expected {expected} within {:.1}%",
            REL_ERR * 100.0
        );
    }

    #[test]
    fn mean_and_max() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_us(1.0));
        s.record(Duration::from_us(3.0));
        assert_eq!(s.mean(), Duration::from_us(2.0));
        assert_eq!(s.max(), Duration::from_us(3.0));
        assert_eq!(s.min(), Duration::from_us(1.0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn percentiles_pick_approximately_correct_ranks() {
        let mut s = LatencyStats::new();
        for i in 1..=1000 {
            s.record(Duration::from_ns(i as f64));
        }
        assert_close(s.percentile(0.5), Duration::from_ns(500.0));
        assert_close(s.percentile(0.99), Duration::from_ns(990.0));
        assert_close(s.percentile(0.9999), Duration::from_ns(1000.0));
        // The extremes are exact: min and max are tracked outside the
        // buckets.
        assert_eq!(s.percentile(1.0), Duration::from_ns(1000.0));
        assert_close(s.percentile(0.0), Duration::from_ns(1.0));
    }

    #[test]
    fn small_values_are_exact() {
        // The linear region (below 64 ps) and exact min/max mean tiny
        // distributions lose nothing.
        let mut s = LatencyStats::new();
        for ps in [1u64, 5, 17, 63] {
            s.record(Duration::from_ps(ps));
        }
        assert_eq!(s.percentile(0.25), Duration::from_ps(1));
        assert_eq!(s.percentile(0.5), Duration::from_ps(5));
        assert_eq!(s.percentile(0.75), Duration::from_ps(17));
        assert_eq!(s.percentile(1.0), Duration::from_ps(63));
    }

    #[test]
    fn memory_is_constant_in_sample_count() {
        let mut s = LatencyStats::new();
        let buckets_before = s.counts.len();
        for i in 0..100_000u64 {
            s.record(Duration::from_ns((i % 977) as f64));
        }
        assert_eq!(s.counts.len(), buckets_before);
        assert_eq!(s.counts.len(), LatencyStats::bucket_count());
        assert_eq!(s.len(), 100_000);
    }

    #[test]
    fn bucket_index_and_high_are_consistent() {
        // Every probed value maps to a bucket whose representative is >= the
        // value and within the promised relative error.
        let mut probes: Vec<u64> = (0..2048).collect();
        for e in 6..=MAX_EXPONENT {
            for off in [0u64, 1, 63, 64, 1000] {
                probes.push((1u64 << e).saturating_add(off));
            }
            probes.push((1u64 << (e + 1)) - 1);
        }
        for &v in &probes {
            let idx = LatencyStats::bucket_index(v);
            assert!(idx < BUCKET_COUNT, "index {idx} out of range for {v}");
            let high = LatencyStats::bucket_high(idx);
            assert!(high >= v, "representative {high} below value {v}");
            assert!(
                (high - v) as f64 <= v as f64 * REL_ERR,
                "bucket too wide for {v}: high {high}"
            );
            // Representative round-trips into the same bucket.
            assert_eq!(LatencyStats::bucket_index(high), idx);
        }
    }

    #[test]
    fn huge_values_clamp_into_the_final_bucket() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_ps(u64::MAX));
        s.record(Duration::from_ps(1));
        assert_eq!(s.percentile(1.0), Duration::from_ps(u64::MAX));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(Duration::from_us(1.0));
        b.record(Duration::from_us(9.0));
        b.record(Duration::from_us(3.0));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.min(), Duration::from_us(1.0));
        assert_eq!(a.max(), Duration::from_us(9.0));
        let mut empty = LatencyStats::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn merge_is_exactly_a_single_collector_fed_the_union() {
        // Split one sample stream across three collectors, merge them, and
        // compare against a single collector fed everything: the structs
        // must be identical field for field — every bucket count, the exact
        // min/max, the sample count and the total (hence the mean).
        let samples: Vec<Duration> = (0..3000u64)
            .map(|i| Duration::from_ps((i * 7919 + 13) % 2_000_000))
            .collect();
        let mut reference = LatencyStats::new();
        let mut shards = vec![LatencyStats::new(); 3];
        for (i, &s) in samples.iter().enumerate() {
            reference.record(s);
            shards[i % 3].record(s);
        }
        let mut merged = LatencyStats::new();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged, reference, "merge must equal single-collector");
        // Spelled out for the fields the histogram answers queries from:
        assert_eq!(merged.counts, reference.counts, "per-bucket sums");
        assert_eq!(merged.len(), samples.len());
        assert_eq!(merged.min(), samples.iter().copied().min().unwrap());
        assert_eq!(merged.max(), samples.iter().copied().max().unwrap());
        let exact_total: u64 = samples.iter().map(|s| s.as_ps()).sum();
        assert_eq!(
            merged.mean(),
            Duration::from_ps(exact_total) / samples.len() as u64
        );
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(merged.percentile(p), reference.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity_in_both_directions() {
        let mut populated = LatencyStats::new();
        populated.record(Duration::from_us(4.0));
        populated.record(Duration::from_us(2.0));
        let snapshot = populated.clone();

        // Merging an empty collector in must change nothing (in particular
        // it must not drag min toward the empty collector's zero).
        populated.merge(&LatencyStats::new());
        assert_eq!(populated, snapshot);
        assert_eq!(populated.min(), Duration::from_us(2.0));

        // Merging into an empty collector must adopt the source exactly.
        let mut empty = LatencyStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
        assert_eq!(empty.min(), Duration::from_us(2.0));
        assert_eq!(empty.max(), Duration::from_us(4.0));
    }

    #[test]
    fn percentile_queries_do_not_mutate() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_ns(10.0));
        s.record(Duration::from_ns(5.0));
        let snapshot = s.clone();
        let _ = s.percentile(0.5);
        let _ = s.percentile(1.0);
        assert_eq!(s, snapshot);
    }

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = CostBreakdown::zero();
        b.accumulate(CostBreakdown {
            compute: Duration::from_us(1.0),
            host_data_movement: Duration::from_us(2.0),
            internal_data_movement: Duration::from_us(3.0),
            flash_array: Duration::from_us(4.0),
        });
        b.accumulate(CostBreakdown {
            compute: Duration::from_us(1.0),
            ..CostBreakdown::zero()
        });
        assert_eq!(b.total(), Duration::from_us(11.0));
        let (c, h, i, f) = b.fractions();
        assert!((c - 2.0 / 11.0).abs() < 1e-9);
        assert!((h - 2.0 / 11.0).abs() < 1e-9);
        assert!((i - 3.0 / 11.0).abs() < 1e-9);
        assert!((f - 4.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(CostBreakdown::zero().fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn lane_stats_record_and_occupancy() {
        let mut lane = LaneStats::default();
        assert_eq!(lane.occupancy(), 0.0);
        // Closed-loop: back-to-back requests, no idle — occupancy is 1.
        lane.record(Duration::ZERO, Duration::ZERO, Duration::from_us(2.0));
        lane.record(
            Duration::ZERO,
            Duration::from_us(2.0),
            Duration::from_us(2.0),
        );
        assert_eq!(lane.requests, 2);
        assert_eq!(lane.occupancy(), 1.0);
        assert_eq!(lane.queued, Duration::from_us(2.0));
        // Open-loop: an idle gap as long as the busy time halves occupancy.
        lane.record(Duration::from_us(4.0), Duration::ZERO, Duration::ZERO);
        assert!((lane.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(lane.idle, Duration::from_us(4.0));
    }

    #[test]
    fn lane_stats_merge_matches_single_collector() {
        let samples = [
            (
                Duration::ZERO,
                Duration::from_us(1.0),
                Duration::from_us(2.0),
            ),
            (
                Duration::from_us(3.0),
                Duration::ZERO,
                Duration::from_us(1.0),
            ),
            (
                Duration::from_us(0.5),
                Duration::from_us(0.5),
                Duration::ZERO,
            ),
        ];
        let mut whole = LaneStats::default();
        let mut left = LaneStats::default();
        let mut right = LaneStats::default();
        for (i, &(idle, queued, busy)) in samples.iter().enumerate() {
            whole.record(idle, queued, busy);
            let shard = if i % 2 == 0 { &mut left } else { &mut right };
            shard.record(idle, queued, busy);
        }
        let mut merged = LaneStats::default();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged, whole);
        assert_eq!(merged.occupancy(), whole.occupancy());
    }
}
