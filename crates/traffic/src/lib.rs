//! # conduit-traffic
//!
//! The traffic subsystem of the Conduit reproduction: deterministic
//! arrival-process generators, replayable traffic traces and tenant-mix
//! descriptors for cross-tenant interference studies.
//!
//! The paper's multi-tenant evaluation needs one thing the closed-loop
//! harness cannot provide: *reproducible contention*. This crate supplies
//! it in three layers:
//!
//! * [`process`] — arrival processes behind the [`ArrivalProcess`] trait:
//!   [`ArrivalSpec::Deterministic`] (fixed interarrival plus phase),
//!   [`ArrivalSpec::Poisson`] (exponential gaps) and
//!   [`ArrivalSpec::MarkovOnOff`] (a two-state modulated burst process).
//!   The stochastic processes draw from the counted splitmix64 stream used
//!   by fault injection, so a generator's output is a pure function of
//!   `(spec, draw index)` — replayable on any machine, any worker count.
//! * [`mix`] — [`TrafficMix`]: tenants ([`TenantSpec`]) binding a workload
//!   program, target device, offloading policy and arrival process;
//!   [`TrafficMix::generate`] unrolls the mix over a horizon into a sorted
//!   trace.
//! * [`trace`] — the compact versioned **CTR1** wire format
//!   ([`Trace::to_bytes`] / [`Trace::from_bytes`]): delta-varint arrival
//!   records behind a checksum, with checkpoint-grade hardened decoding.
//!   [`Trace::instantiate`] turns a trace back into
//!   [`conduit::RunRequest`]s against a [`conduit::Session`], ready for
//!   `submit_batch`.
//!
//! Tenants that name the same device contend for its FIFO lane, dies,
//! channels, GC debt and coherence state — that is the shared-channel
//! interference configuration the `repro interference` target sweeps.

pub mod mix;
pub mod process;
pub mod trace;

pub use mix::{
    SloTarget, TenantSpec, TrafficMix, MAX_GENERATED_PER_TENANT, MAX_NAME_LEN, MAX_WEIGHT,
};
pub use process::{ArrivalProcess, ArrivalSpec};
pub use trace::{
    Trace, TraceRecord, TraceRun, MAX_TENANTS, TRACE_MAGIC, TRACE_VERSION, TRACE_VERSION_V2,
};
