//! Tenant-mix descriptors: which tenants exist, what each one runs, where,
//! under which policy, and how its requests arrive.
//!
//! A [`TrafficMix`] is the declarative input of the traffic subsystem:
//! [`TrafficMix::generate`] unrolls every tenant's [`ArrivalSpec`] into a
//! sorted, replayable [`crate::Trace`]. Workloads and policies are encoded
//! with **stable one-byte codes** via exhaustive matches, so adding an enum
//! variant upstream without assigning it a code is a compile error rather
//! than silent trace-format drift.

use conduit::Policy;
use conduit_types::bytes::{put_u16, put_u32, put_u64, Reader};
use conduit_types::{ConduitError, Duration, Result, SimTime};
use conduit_workloads::{Scale, Workload};

use crate::process::ArrivalSpec;
use crate::trace::{Trace, TraceRecord};

/// Longest tenant/device name the trace format accepts.
pub const MAX_NAME_LEN: usize = 256;

/// Upper bound on arrivals one tenant contributes to a generated trace —
/// a backstop so a pathological spec (picosecond gaps, end-of-time horizon)
/// produces a bounded trace instead of an unbounded loop.
pub const MAX_GENERATED_PER_TENANT: usize = 1 << 20;

/// Largest weighted-fair scheduling weight a tenant may carry.
pub const MAX_WEIGHT: u32 = 1 << 16;

/// Per-tenant service-level objectives, enforced by fleet admission control
/// (`conduit_fleet`): a request is **shed** — with a typed, counted
/// [`ConduitError::AdmissionRejected`] instead of ever running — when
/// serving it would violate a target the tenant's recent, windowed
/// statistics already break. `None` targets are unconstrained; the default
/// is fully unconstrained (admission always passes).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloTarget {
    /// Largest acceptable p99 arrival-to-completion latency over the
    /// tenant's served requests.
    pub max_p99: Option<Duration>,
    /// Largest acceptable busy-fraction of the tenant's device lane over
    /// the last admission window (`0.0 < target <= 1.0`).
    pub max_lane_occupancy: Option<f64>,
}

impl SloTarget {
    /// Whether every target is unconstrained (admission always passes).
    pub fn is_unconstrained(&self) -> bool {
        self.max_p99.is_none() && self.max_lane_occupancy.is_none()
    }
}

/// One tenant of a traffic mix: a workload program bound to a device, a
/// placement policy and an arrival process.
///
/// Two tenants may name the **same device** — that is the shared-channel
/// interference configuration: their requests then serialize through one
/// FIFO lane and contend for the same dies, channels, GC debt and coherence
/// state. Distinct devices isolate them completely.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (reporting only; must be nonempty, at most
    /// [`MAX_NAME_LEN`] bytes).
    pub name: String,
    /// Name of the warm device the tenant's requests target
    /// ([`conduit::Session::create_device`] is idempotent, so tenants
    /// sharing a name share a device).
    pub device: String,
    /// The workload program the tenant runs per request.
    pub workload: Workload,
    /// The offloading policy its requests run under.
    pub policy: Policy,
    /// How the tenant's requests arrive on the batch timeline.
    pub arrivals: ArrivalSpec,
    /// Weighted-fair scheduling weight of the tenant's requests on its
    /// device lane (`1..=`[`MAX_WEIGHT`]; default 1). Replay maps this onto
    /// [`conduit::RunRequest::weighted`] with the tenant index as the flow
    /// id, so tenants sharing a device with *different* weights split the
    /// lane by deficit round robin; uniform weights keep the lane plain
    /// FIFO.
    pub weight: u32,
    /// Service-level objectives fleet admission control enforces for this
    /// tenant (default: unconstrained).
    pub slo: SloTarget,
}

impl TenantSpec {
    /// A tenant with default scheduling weight (1) and unconstrained SLOs.
    pub fn new(
        name: impl Into<String>,
        device: impl Into<String>,
        workload: Workload,
        policy: Policy,
        arrivals: ArrivalSpec,
    ) -> Self {
        TenantSpec {
            name: name.into(),
            device: device.into(),
            workload,
            policy,
            arrivals,
            weight: 1,
            slo: SloTarget::default(),
        }
    }

    /// Builder-style: sets the tenant's weighted-fair scheduling weight.
    pub fn weighted(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Builder-style: sets the tenant's SLO targets.
    pub fn with_slo(mut self, slo: SloTarget) -> Self {
        self.slo = slo;
        self
    }

    /// Whether weight and SLOs are at their defaults (the tenant encodes in
    /// the version-1 trace format).
    pub(crate) fn scheduling_is_default(&self) -> bool {
        self.weight == 1 && self.slo.is_unconstrained()
    }
}

/// A complete tenant mix plus the workload scale its programs are generated
/// at. This is the descriptor a [`crate::Trace`] embeds, so a persisted
/// trace replays against the exact programs that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMix {
    /// Scale every tenant's workload program is generated at.
    pub scale: Scale,
    /// The tenants, in stable order (trace records reference them by
    /// index).
    pub tenants: Vec<TenantSpec>,
}

impl TrafficMix {
    /// A mix with no tenants at the given scale.
    pub fn new(scale: Scale) -> Self {
        TrafficMix {
            scale,
            tenants: Vec::new(),
        }
    }

    /// Builder-style: appends a tenant.
    pub fn tenant(mut self, tenant: TenantSpec) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Unrolls every tenant's arrival process over the half-open horizon
    /// `[0, horizon)` into a trace, sorted by `(arrival, tenant index)`.
    ///
    /// Generation is deterministic: the same mix and horizon always produce
    /// the same trace, and the per-tenant draw counts are pure functions of
    /// the spec (counted-draw replayability). A stream that saturates at
    /// [`SimTime::MAX`] stops contributing ("never" arrives); a tenant
    /// contributes at most [`MAX_GENERATED_PER_TENANT`] records.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidConfig`] if any tenant is invalid (empty or
    /// oversized names, zero-gap arrival spec).
    pub fn generate(&self, horizon: Duration) -> Result<Trace> {
        for tenant in &self.tenants {
            validate_tenant(tenant)?;
        }
        let end = SimTime::ZERO + horizon;
        let mut records: Vec<TraceRecord> = Vec::new();
        for (index, tenant) in self.tenants.iter().enumerate() {
            let mut generator = tenant.arrivals.generator();
            for _ in 0..MAX_GENERATED_PER_TENANT {
                let arrival = generator.next_arrival();
                if arrival >= end || arrival == SimTime::MAX {
                    break;
                }
                records.push(TraceRecord {
                    tenant: index as u16,
                    arrival,
                });
            }
        }
        // Stable: per-tenant order (already nondecreasing) is preserved for
        // equal keys, so ties resolve deterministically by tenant index.
        records.sort_by_key(|r| (r.arrival, r.tenant));
        Ok(Trace {
            mix: self.clone(),
            records,
        })
    }
}

/// Validates one tenant's fields (names and arrival spec).
pub(crate) fn validate_tenant(tenant: &TenantSpec) -> Result<()> {
    for (what, s) in [
        ("tenant name", &tenant.name),
        ("device name", &tenant.device),
    ] {
        if s.is_empty() || s.len() > MAX_NAME_LEN {
            return Err(ConduitError::invalid_config(format!(
                "{what} must be 1..={MAX_NAME_LEN} bytes, got {} bytes",
                s.len()
            )));
        }
    }
    if !tenant.arrivals.is_valid() {
        return Err(ConduitError::invalid_config(format!(
            "tenant {}: arrival spec has a zero gap: {:?}",
            tenant.name, tenant.arrivals
        )));
    }
    if tenant.weight == 0 || tenant.weight > MAX_WEIGHT {
        return Err(ConduitError::invalid_config(format!(
            "tenant {}: weight must be 1..={MAX_WEIGHT}, got {}",
            tenant.name, tenant.weight
        )));
    }
    if let Some(p99) = tenant.slo.max_p99 {
        if p99 == Duration::ZERO {
            return Err(ConduitError::invalid_config(format!(
                "tenant {}: max_p99 SLO target must be positive",
                tenant.name
            )));
        }
    }
    if let Some(occ) = tenant.slo.max_lane_occupancy {
        if !(occ.is_finite() && 0.0 < occ && occ <= 1.0) {
            return Err(ConduitError::invalid_config(format!(
                "tenant {}: max_lane_occupancy SLO target must be in (0, 1], got {occ}",
                tenant.name
            )));
        }
    }
    Ok(())
}

/// Flag bits of the version-2 per-tenant scheduling block.
const SLO_HAS_MAX_P99: u8 = 1 << 0;
const SLO_HAS_MAX_OCCUPANCY: u8 = 1 << 1;

/// Appends the version-2 scheduling block (weight + optional SLO targets).
pub(crate) fn put_scheduling(out: &mut Vec<u8>, tenant: &TenantSpec) {
    put_u32(out, tenant.weight);
    let mut flags = 0u8;
    if tenant.slo.max_p99.is_some() {
        flags |= SLO_HAS_MAX_P99;
    }
    if tenant.slo.max_lane_occupancy.is_some() {
        flags |= SLO_HAS_MAX_OCCUPANCY;
    }
    out.push(flags);
    if let Some(p99) = tenant.slo.max_p99 {
        put_u64(out, p99.as_ps());
    }
    if let Some(occ) = tenant.slo.max_lane_occupancy {
        put_u64(out, occ.to_bits());
    }
}

/// Reads a scheduling block written by [`put_scheduling`]. Range checks
/// mirror [`validate_tenant`] so a forged block cannot smuggle weights or
/// targets past the spec-level validation.
pub(crate) fn read_scheduling(r: &mut Reader<'_>) -> Result<(u32, SloTarget)> {
    let weight = r.u32()?;
    if weight == 0 || weight > MAX_WEIGHT {
        return Err(ConduitError::corrupt_checkpoint(format!(
            "tenant weight {weight} outside 1..={MAX_WEIGHT}"
        )));
    }
    let flags = r.u8()?;
    if flags & !(SLO_HAS_MAX_P99 | SLO_HAS_MAX_OCCUPANCY) != 0 {
        return Err(ConduitError::corrupt_checkpoint(format!(
            "unknown SLO flag bits {flags:#04x}"
        )));
    }
    let max_p99 = if flags & SLO_HAS_MAX_P99 != 0 {
        let ps = r.u64()?;
        if ps == 0 {
            return Err(ConduitError::corrupt_checkpoint(
                "max_p99 SLO target must be positive",
            ));
        }
        Some(Duration::from_ps(ps))
    } else {
        None
    };
    let max_lane_occupancy = if flags & SLO_HAS_MAX_OCCUPANCY != 0 {
        let occ = f64::from_bits(r.u64()?);
        if !(occ.is_finite() && 0.0 < occ && occ <= 1.0) {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "max_lane_occupancy SLO target {occ} outside (0, 1]"
            )));
        }
        Some(occ)
    } else {
        None
    };
    Ok((
        weight,
        SloTarget {
            max_p99,
            max_lane_occupancy,
        },
    ))
}

/// The stable trace code of a workload. Exhaustive: adding a workload
/// without assigning it a code fails to compile.
pub(crate) fn workload_code(w: Workload) -> u8 {
    match w {
        Workload::Aes => 0,
        Workload::XorFilter => 1,
        Workload::Heat3d => 2,
        Workload::Jacobi1d => 3,
        Workload::LlamaInference => 4,
        Workload::LlmTraining => 5,
    }
}

/// Decodes a workload code written by [`workload_code`].
pub(crate) fn workload_from_code(code: u8) -> Result<Workload> {
    Ok(match code {
        0 => Workload::Aes,
        1 => Workload::XorFilter,
        2 => Workload::Heat3d,
        3 => Workload::Jacobi1d,
        4 => Workload::LlamaInference,
        5 => Workload::LlmTraining,
        v => {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "unknown workload code {v}"
            )))
        }
    })
}

/// The stable trace code of a policy. Exhaustive: adding a policy without
/// assigning it a code fails to compile.
pub(crate) fn policy_code(p: Policy) -> u8 {
    match p {
        Policy::HostCpu => 0,
        Policy::HostGpu => 1,
        Policy::IspOnly => 2,
        Policy::PudSsd => 3,
        Policy::FlashCosmos => 4,
        Policy::AresFlash => 5,
        Policy::IfpIsp => 6,
        Policy::BwOffloading => 7,
        Policy::DmOffloading => 8,
        Policy::Conduit => 9,
        Policy::Ideal => 10,
    }
}

/// Decodes a policy code written by [`policy_code`].
pub(crate) fn policy_from_code(code: u8) -> Result<Policy> {
    Ok(match code {
        0 => Policy::HostCpu,
        1 => Policy::HostGpu,
        2 => Policy::IspOnly,
        3 => Policy::PudSsd,
        4 => Policy::FlashCosmos,
        5 => Policy::AresFlash,
        6 => Policy::IfpIsp,
        7 => Policy::BwOffloading,
        8 => Policy::DmOffloading,
        9 => Policy::Conduit,
        10 => Policy::Ideal,
        v => {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "unknown policy code {v}"
            )))
        }
    })
}

/// Appends a length-prefixed string (the trace format's name encoding).
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= MAX_NAME_LEN);
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed string, rejecting empty, oversized or non-UTF-8
/// names.
pub(crate) fn read_str(r: &mut Reader<'_>) -> Result<String> {
    let len = r.u16()? as usize;
    if len == 0 || len > MAX_NAME_LEN {
        return Err(ConduitError::corrupt_checkpoint(format!(
            "name length {len} outside 1..={MAX_NAME_LEN}"
        )));
    }
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ConduitError::corrupt_checkpoint("name is not valid UTF-8"))
}

/// The spec tags of the arrival-process encoding.
const SPEC_DETERMINISTIC: u8 = 0;
const SPEC_POISSON: u8 = 1;
const SPEC_MARKOV_ON_OFF: u8 = 2;

/// Appends an arrival spec (tag byte + fixed-width parameters).
pub(crate) fn put_spec(out: &mut Vec<u8>, spec: &ArrivalSpec) {
    match *spec {
        ArrivalSpec::Deterministic {
            interarrival,
            phase,
        } => {
            out.push(SPEC_DETERMINISTIC);
            put_u64(out, interarrival.as_ps());
            put_u64(out, phase.as_ps());
        }
        ArrivalSpec::Poisson {
            mean_interarrival,
            seed,
        } => {
            out.push(SPEC_POISSON);
            put_u64(out, mean_interarrival.as_ps());
            put_u64(out, seed);
        }
        ArrivalSpec::MarkovOnOff {
            burst_interarrival,
            mean_on,
            mean_off,
            seed,
        } => {
            out.push(SPEC_MARKOV_ON_OFF);
            put_u64(out, burst_interarrival.as_ps());
            put_u64(out, mean_on.as_ps());
            put_u64(out, mean_off.as_ps());
            put_u64(out, seed);
        }
    }
}

/// Reads an arrival spec written by [`put_spec`], rejecting unknown tags
/// and zero-gap parameters.
pub(crate) fn read_spec(r: &mut Reader<'_>) -> Result<ArrivalSpec> {
    let spec = match r.u8()? {
        SPEC_DETERMINISTIC => ArrivalSpec::Deterministic {
            interarrival: Duration::from_ps(r.u64()?),
            phase: Duration::from_ps(r.u64()?),
        },
        SPEC_POISSON => ArrivalSpec::Poisson {
            mean_interarrival: Duration::from_ps(r.u64()?),
            seed: r.u64()?,
        },
        SPEC_MARKOV_ON_OFF => ArrivalSpec::MarkovOnOff {
            burst_interarrival: Duration::from_ps(r.u64()?),
            mean_on: Duration::from_ps(r.u64()?),
            mean_off: Duration::from_ps(r.u64()?),
            seed: r.u64()?,
        },
        v => {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "unknown arrival-spec tag {v}"
            )))
        }
    };
    if !spec.is_valid() {
        return Err(ConduitError::corrupt_checkpoint(
            "arrival spec has a zero gap",
        ));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str, device: &str) -> TenantSpec {
        TenantSpec::new(
            name,
            device,
            Workload::XorFilter,
            Policy::Conduit,
            ArrivalSpec::Deterministic {
                interarrival: Duration::from_us(2.0),
                phase: Duration::ZERO,
            },
        )
    }

    #[test]
    fn generate_interleaves_and_sorts_tenants() {
        let mix = TrafficMix::new(Scale::test())
            .tenant(TenantSpec {
                arrivals: ArrivalSpec::Deterministic {
                    interarrival: Duration::from_us(2.0),
                    phase: Duration::from_us(1.0),
                },
                ..tenant("a", "dev-a")
            })
            .tenant(tenant("b", "dev-b"));
        let trace = mix.generate(Duration::from_us(6.0)).unwrap();
        // b: 0, 2, 4 us; a: 1, 3, 5 us — sorted by arrival.
        let got: Vec<(u16, f64)> = trace
            .records
            .iter()
            .map(|r| (r.tenant, r.arrival.as_us()))
            .collect();
        assert_eq!(
            got,
            vec![(1, 0.0), (0, 1.0), (1, 2.0), (0, 3.0), (1, 4.0), (0, 5.0)]
        );
    }

    #[test]
    fn ties_resolve_by_tenant_index() {
        let mix = TrafficMix::new(Scale::test())
            .tenant(tenant("a", "shared"))
            .tenant(tenant("b", "shared"));
        let trace = mix.generate(Duration::from_us(4.1)).unwrap();
        let got: Vec<u16> = trace.records.iter().map(|r| r.tenant).collect();
        assert_eq!(got, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let mix = TrafficMix::new(Scale::test()).tenant(TenantSpec {
            arrivals: ArrivalSpec::Poisson {
                mean_interarrival: Duration::from_ps(1),
                seed: 3,
            },
            ..tenant("flood", "dev")
        });
        // A picosecond-gap stream over an enormous horizon is clamped by the
        // per-tenant backstop rather than looping forever.
        let trace = mix.generate(Duration::from_secs(1.0)).unwrap();
        assert_eq!(trace.records.len(), MAX_GENERATED_PER_TENANT);
        assert_eq!(
            trace,
            mix.generate(Duration::from_secs(1.0)).unwrap(),
            "generation must be deterministic"
        );
    }

    #[test]
    fn invalid_tenants_are_rejected() {
        let empty_name = TenantSpec {
            name: String::new(),
            ..tenant("x", "dev")
        };
        let zero_gap = TenantSpec {
            arrivals: ArrivalSpec::Poisson {
                mean_interarrival: Duration::ZERO,
                seed: 0,
            },
            ..tenant("x", "dev")
        };
        let zero_weight = tenant("x", "dev").weighted(0);
        let huge_weight = tenant("x", "dev").weighted(MAX_WEIGHT + 1);
        let zero_p99 = tenant("x", "dev").with_slo(SloTarget {
            max_p99: Some(Duration::ZERO),
            max_lane_occupancy: None,
        });
        let bad_occupancy = tenant("x", "dev").with_slo(SloTarget {
            max_p99: None,
            max_lane_occupancy: Some(1.5),
        });
        for bad in [
            empty_name,
            zero_gap,
            zero_weight,
            huge_weight,
            zero_p99,
            bad_occupancy,
        ] {
            let mix = TrafficMix::new(Scale::test()).tenant(bad);
            assert!(mix.generate(Duration::from_us(1.0)).is_err());
        }
    }

    #[test]
    fn codes_roundtrip_exhaustively() {
        for w in Workload::ALL {
            assert_eq!(workload_from_code(workload_code(w)).unwrap(), w);
        }
        for p in Policy::ALL {
            assert_eq!(policy_from_code(policy_code(p)).unwrap(), p);
        }
        assert!(workload_from_code(200).is_err());
        assert!(policy_from_code(200).is_err());
    }
}
