//! Deterministic arrival-process generators.
//!
//! Every generator implements [`ArrivalProcess`]: a stream of nondecreasing
//! [`SimTime`] arrival instants. Randomized generators draw from the
//! workspace's counted splitmix64 stream ([`conduit_types::FaultPlan`] — a
//! pure function of `(seed, draw index)`), so a generator's state is fully
//! described by its [`ArrivalSpec`] plus the draw cursor and two generators
//! built from the same spec emit bit-identical streams, regardless of how
//! the requests they feed are later scheduled across worker pools.
//!
//! All timeline arithmetic is **saturating** ([`SimTime`]`+`[`Duration`]
//! clamps at [`SimTime::MAX`]): a pathological phase offset or a stream that
//! outlives representable time degrades into "arrivals at the end of time"
//! instead of panicking or wrapping the clock backwards. Consumers treat
//! [`SimTime::MAX`] as "never" — [`crate::TrafficMix::generate`] stops a
//! tenant's stream there.

use conduit_types::{Duration, FaultPlan, SimTime};

/// A deterministic, replayable stream of arrival instants.
///
/// Implementations must be **nondecreasing** (each call returns an instant
/// `>=` the previous one) and **counted-draw**: the number of random values
/// consumed after `n` calls is a pure function of the spec and `n`, never of
/// wall-clock state or scheduling.
pub trait ArrivalProcess {
    /// The next arrival instant, saturating at [`SimTime::MAX`].
    fn next_arrival(&mut self) -> SimTime;

    /// How many splitmix64 values this generator has drawn so far (zero for
    /// deterministic processes) — the replay cursor.
    fn draws(&self) -> u64;
}

/// A serializable description of an arrival process: the generator "zoo"
/// of the traffic subsystem. Building a generator from a spec always starts
/// the stream at draw zero, so a spec embedded in a trace replays the exact
/// arrivals it generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Fixed interarrival gap starting at `phase`: arrival `k` is
    /// `phase + k * interarrival` (the D/D/1 driver of `repro
    /// arrival-sweep`).
    Deterministic {
        /// Gap between consecutive arrivals (must be nonzero).
        interarrival: Duration,
        /// Offset of the first arrival on the batch timeline.
        phase: Duration,
    },
    /// Poisson process: independent exponential interarrival gaps with the
    /// given mean. One splitmix64 draw per arrival.
    Poisson {
        /// Mean interarrival gap (must be nonzero); the offered rate is its
        /// reciprocal.
        mean_interarrival: Duration,
        /// Seed of the counted draw stream.
        seed: u64,
    },
    /// Markov-modulated on/off bursts: the source alternates between an
    /// **on** state emitting arrivals at a fixed `burst_interarrival` and a
    /// silent **off** state; the state holding times are exponential with
    /// means `mean_on` / `mean_off` (two draws per on/off cycle). The
    /// long-run duty cycle is `mean_on / (mean_on + mean_off)` and the
    /// long-run offered rate `duty_cycle / burst_interarrival`.
    MarkovOnOff {
        /// Gap between arrivals while the source is on (must be nonzero).
        burst_interarrival: Duration,
        /// Mean duration of an on period (must be nonzero).
        mean_on: Duration,
        /// Mean duration of an off period (must be nonzero).
        mean_off: Duration,
        /// Seed of the counted draw stream.
        seed: u64,
    },
}

impl ArrivalSpec {
    /// Whether every duration parameter is nonzero (a zero gap would emit
    /// unboundedly many arrivals at one instant). Generation and trace
    /// decoding both reject invalid specs.
    pub fn is_valid(&self) -> bool {
        match *self {
            ArrivalSpec::Deterministic { interarrival, .. } => !interarrival.is_zero(),
            ArrivalSpec::Poisson {
                mean_interarrival, ..
            } => !mean_interarrival.is_zero(),
            ArrivalSpec::MarkovOnOff {
                burst_interarrival,
                mean_on,
                mean_off,
                ..
            } => !burst_interarrival.is_zero() && !mean_on.is_zero() && !mean_off.is_zero(),
        }
    }

    /// The long-run fraction of time the source is emitting (1 for the
    /// always-on processes).
    pub fn duty_cycle(&self) -> f64 {
        match *self {
            ArrivalSpec::MarkovOnOff {
                mean_on, mean_off, ..
            } => {
                let on = mean_on.as_ps() as f64;
                let off = mean_off.as_ps() as f64;
                if on + off == 0.0 {
                    0.0
                } else {
                    on / (on + off)
                }
            }
            _ => 1.0,
        }
    }

    /// The long-run offered arrival rate in arrivals per second.
    pub fn mean_rate_per_sec(&self) -> f64 {
        let gap_ps = match *self {
            ArrivalSpec::Deterministic { interarrival, .. } => interarrival.as_ps(),
            ArrivalSpec::Poisson {
                mean_interarrival, ..
            } => mean_interarrival.as_ps(),
            ArrivalSpec::MarkovOnOff {
                burst_interarrival, ..
            } => burst_interarrival.as_ps(),
        };
        if gap_ps == 0 {
            return 0.0;
        }
        self.duty_cycle() * 1e12 / gap_ps as f64
    }

    /// Builds the generator this spec describes, starting at draw zero.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on an invalid spec (see
    /// [`ArrivalSpec::is_valid`]).
    pub fn generator(&self) -> Box<dyn ArrivalProcess> {
        debug_assert!(self.is_valid(), "invalid arrival spec: {self:?}");
        match *self {
            ArrivalSpec::Deterministic {
                interarrival,
                phase,
            } => Box::new(DeterministicArrivals {
                interarrival,
                next: SimTime::ZERO + phase,
            }),
            ArrivalSpec::Poisson {
                mean_interarrival,
                seed,
            } => Box::new(PoissonArrivals {
                mean: mean_interarrival,
                stream: FaultPlan::new(seed),
                cursor: SimTime::ZERO,
            }),
            ArrivalSpec::MarkovOnOff {
                burst_interarrival,
                mean_on,
                mean_off,
                seed,
            } => {
                let mut stream = FaultPlan::new(seed);
                // The stream starts at the beginning of an on period whose
                // duration is the first draw.
                let on = exponential(mean_on, &mut stream);
                Box::new(MarkovOnOffArrivals {
                    burst_interarrival,
                    mean_on,
                    mean_off,
                    stream,
                    cursor: SimTime::ZERO,
                    on_until: SimTime::ZERO + on,
                })
            }
        }
    }
}

/// An exponential variate with the given mean, quantized to picoseconds.
/// Consumes exactly one draw.
fn exponential(mean: Duration, stream: &mut FaultPlan) -> Duration {
    // u ∈ [0, 1): 1-u ∈ (0, 1], so the log is finite and the gap
    // non-negative, bounded by mean * 53·ln2 (~36.7 means).
    let u = stream.next_f64();
    let gap = -(1.0 - u).ln();
    Duration::from_ps((mean.as_ps() as f64 * gap).round() as u64)
}

/// Fixed-gap arrivals (see [`ArrivalSpec::Deterministic`]).
#[derive(Debug)]
struct DeterministicArrivals {
    interarrival: Duration,
    next: SimTime,
}

impl ArrivalProcess for DeterministicArrivals {
    fn next_arrival(&mut self) -> SimTime {
        let arrival = self.next;
        self.next += self.interarrival;
        arrival
    }

    fn draws(&self) -> u64 {
        0
    }
}

/// Exponential-gap arrivals (see [`ArrivalSpec::Poisson`]).
#[derive(Debug)]
struct PoissonArrivals {
    mean: Duration,
    stream: FaultPlan,
    cursor: SimTime,
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(&mut self) -> SimTime {
        let gap = exponential(self.mean, &mut self.stream);
        self.cursor += gap;
        self.cursor
    }

    fn draws(&self) -> u64 {
        self.stream.draws()
    }
}

/// Bursty on/off arrivals (see [`ArrivalSpec::MarkovOnOff`]).
#[derive(Debug)]
struct MarkovOnOffArrivals {
    burst_interarrival: Duration,
    mean_on: Duration,
    mean_off: Duration,
    stream: FaultPlan,
    /// The instant the next arrival would fire if the source stays on.
    cursor: SimTime,
    /// End of the current on period.
    on_until: SimTime,
}

impl ArrivalProcess for MarkovOnOffArrivals {
    fn next_arrival(&mut self) -> SimTime {
        loop {
            if self.cursor < self.on_until {
                let arrival = self.cursor;
                self.cursor += self.burst_interarrival;
                return arrival;
            }
            // Once the clock saturates there is no more representable time
            // for new periods: emit "never" forever, drawing nothing more
            // (the draw cursor stays a pure function of emitted arrivals).
            if self.on_until == SimTime::MAX {
                return SimTime::MAX;
            }
            // The on period ended before the next burst slot: hold off for
            // an exponential silence, then start a fresh on period.
            let off = exponential(self.mean_off, &mut self.stream);
            let on = exponential(self.mean_on, &mut self.stream);
            self.cursor = self.on_until + off;
            self.on_until = self.cursor + on;
        }
    }

    fn draws(&self) -> u64 {
        self.stream.draws()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(spec: ArrivalSpec, n: usize) -> Vec<SimTime> {
        let mut generator = spec.generator();
        (0..n).map(|_| generator.next_arrival()).collect()
    }

    #[test]
    fn deterministic_arrivals_are_an_arithmetic_sequence() {
        let spec = ArrivalSpec::Deterministic {
            interarrival: Duration::from_us(3.0),
            phase: Duration::from_us(1.0),
        };
        let arrivals = collect(spec, 4);
        for (k, t) in arrivals.iter().enumerate() {
            assert_eq!(
                *t,
                SimTime::ZERO + Duration::from_us(1.0) + Duration::from_us(3.0) * k as u64
            );
        }
        assert_eq!(spec.generator().draws(), 0);
        assert_eq!(spec.duty_cycle(), 1.0);
        assert!((spec.mean_rate_per_sec() - 1e12 / 3e6).abs() < 1e-6);
    }

    #[test]
    fn generators_are_replayable_and_seed_sensitive() {
        for spec in [
            ArrivalSpec::Poisson {
                mean_interarrival: Duration::from_us(5.0),
                seed: 11,
            },
            ArrivalSpec::MarkovOnOff {
                burst_interarrival: Duration::from_us(1.0),
                mean_on: Duration::from_us(20.0),
                mean_off: Duration::from_us(60.0),
                seed: 11,
            },
        ] {
            assert_eq!(collect(spec, 200), collect(spec, 200), "{spec:?}");
            let reseeded = match spec {
                ArrivalSpec::Poisson {
                    mean_interarrival, ..
                } => ArrivalSpec::Poisson {
                    mean_interarrival,
                    seed: 12,
                },
                ArrivalSpec::MarkovOnOff {
                    burst_interarrival,
                    mean_on,
                    mean_off,
                    ..
                } => ArrivalSpec::MarkovOnOff {
                    burst_interarrival,
                    mean_on,
                    mean_off,
                    seed: 12,
                },
                other => other,
            };
            assert_ne!(collect(spec, 200), collect(reseeded, 200), "{spec:?}");
        }
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        for spec in [
            ArrivalSpec::Deterministic {
                interarrival: Duration::from_ps(7),
                phase: Duration::ZERO,
            },
            ArrivalSpec::Poisson {
                mean_interarrival: Duration::from_ns(3.0),
                seed: 5,
            },
            ArrivalSpec::MarkovOnOff {
                burst_interarrival: Duration::from_ns(1.0),
                mean_on: Duration::from_ns(10.0),
                mean_off: Duration::from_ns(10.0),
                seed: 5,
            },
        ] {
            let arrivals = collect(spec, 500);
            assert!(
                arrivals.windows(2).all(|w| w[0] <= w[1]),
                "{spec:?} went backwards"
            );
        }
    }

    #[test]
    fn poisson_mean_rate_converges_at_fixed_seed() {
        let mean = Duration::from_us(10.0);
        let spec = ArrivalSpec::Poisson {
            mean_interarrival: mean,
            seed: 0xA11CE,
        };
        let n = 20_000;
        let arrivals = collect(spec, n);
        let measured_mean = (*arrivals.last().unwrap() - SimTime::ZERO).as_ps() as f64 / n as f64;
        let expected = mean.as_ps() as f64;
        assert!(
            (measured_mean - expected).abs() / expected < 0.03,
            "measured mean gap {measured_mean} ps vs configured {expected} ps"
        );
        // Counted draws: exactly one per arrival.
        let mut generator = spec.generator();
        for _ in 0..n {
            generator.next_arrival();
        }
        assert_eq!(generator.draws(), n as u64);
    }

    #[test]
    fn markov_on_off_duty_cycle_accounting() {
        let spec = ArrivalSpec::MarkovOnOff {
            burst_interarrival: Duration::from_ns(100.0),
            mean_on: Duration::from_us(3.0),
            mean_off: Duration::from_us(9.0),
            seed: 77,
        };
        assert!((spec.duty_cycle() - 0.25).abs() < 1e-12);
        // Long-run offered rate = duty cycle / burst gap: count arrivals
        // over a long stretch and compare.
        let n = 50_000;
        let arrivals = collect(spec, n);
        let span = (*arrivals.last().unwrap() - arrivals[0]).as_secs();
        let measured_rate = (n - 1) as f64 / span;
        let expected = spec.mean_rate_per_sec();
        assert!(
            (measured_rate - expected).abs() / expected < 0.05,
            "measured {measured_rate}/s vs expected {expected}/s"
        );
        // Bursts are visible: gaps are bimodal — either the burst gap or a
        // much longer silence.
        let burst_gap = Duration::from_ns(100.0);
        let silences = arrivals
            .windows(2)
            .filter(|w| (w[1] - w[0]) > burst_gap * 10)
            .count();
        assert!(silences > 0, "no off periods observed");
        let bursty = arrivals
            .windows(2)
            .filter(|w| (w[1] - w[0]) <= burst_gap)
            .count();
        assert!(
            bursty as f64 / (n - 1) as f64 > 0.8,
            "most gaps should be burst-spaced"
        );
    }

    #[test]
    fn pathological_offsets_saturate_instead_of_panicking() {
        // A phase at the end of time: every arrival clamps to SimTime::MAX
        // and the stream stays nondecreasing.
        let spec = ArrivalSpec::Deterministic {
            interarrival: Duration::from_ps(u64::MAX),
            phase: Duration::from_ps(u64::MAX - 1),
        };
        let mut generator = spec.generator();
        assert_eq!(generator.next_arrival(), SimTime::from_ps(u64::MAX - 1));
        for _ in 0..8 {
            assert_eq!(generator.next_arrival(), SimTime::MAX);
        }

        // A saturated bursty stream emits "never" forever without spinning
        // or drawing unboundedly.
        let spec = ArrivalSpec::MarkovOnOff {
            burst_interarrival: Duration::from_ps(u64::MAX / 2),
            mean_on: Duration::from_ps(u64::MAX / 2),
            mean_off: Duration::from_ps(u64::MAX / 2),
            seed: 1,
        };
        let mut generator = spec.generator();
        let mut last = SimTime::ZERO;
        for _ in 0..64 {
            let t = generator.next_arrival();
            assert!(t >= last);
            last = t;
        }
        assert_eq!(last, SimTime::MAX);
        let draws_at_saturation = generator.draws();
        for _ in 0..64 {
            assert_eq!(generator.next_arrival(), SimTime::MAX);
        }
        assert_eq!(generator.draws(), draws_at_saturation);
    }

    #[test]
    fn invalid_specs_are_detected() {
        assert!(!ArrivalSpec::Deterministic {
            interarrival: Duration::ZERO,
            phase: Duration::ZERO,
        }
        .is_valid());
        assert!(!ArrivalSpec::Poisson {
            mean_interarrival: Duration::ZERO,
            seed: 0,
        }
        .is_valid());
        assert!(!ArrivalSpec::MarkovOnOff {
            burst_interarrival: Duration::from_ns(1.0),
            mean_on: Duration::ZERO,
            mean_off: Duration::from_ns(1.0),
            seed: 0,
        }
        .is_valid());
    }
}
