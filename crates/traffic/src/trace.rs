//! The CTR1 replayable trace format.
//!
//! A [`Trace`] is a [`crate::TrafficMix`] plus the fully-unrolled arrival
//! records it generated, sorted by `(arrival, tenant)`. Traces serialize to
//! the compact versioned **CTR1** wire format:
//!
//! ```text
//! magic "CTR1" | version u16 | scale (data u32, steps u32)
//! tenant count u16
//!   per tenant: name | device | workload u8 | policy u8 | arrival spec
//!               [v2: weight u32 | slo flags u8 | optional slo targets]
//! record count u64
//!   per record: varint delta-from-previous-arrival | varint tenant index
//! fnv1a checksum u64 over everything above
//! ```
//!
//! Version 2 adds the per-tenant **scheduling block** — weighted-fair
//! weight plus optional SLO targets ([`crate::SloTarget`]). Encoding is
//! canonical: [`Trace::to_bytes`] writes the lowest version that can carry
//! the value, so a mix whose tenants all use the defaults (weight 1, no
//! SLOs) still produces byte-identical version-1 traces, and the frozen
//! version-1 golden keeps decoding.
//!
//! All integers are little-endian; names are `u16`-length-prefixed UTF-8.
//! Arrivals are sorted, so delta encoding makes records small (a varint
//! delta plus a one-byte tenant index for small mixes) and makes the
//! nondecreasing invariant structural: unsigned deltas cannot encode a
//! regression. Decoding is hardened the same way checkpoint decoding is —
//! every read is bounds-checked, counts are validated against the bytes
//! actually present, unknown tags/codes and non-canonical varints are
//! rejected, and the trailing checksum rejects any corruption of the body
//! before field-level parsing is even attempted.

use conduit::{DeviceHandle, ProgramId, RunRequest, Session};
use conduit_types::bytes::{fnv1a, put_u16, put_u32, put_u64, put_varint, Reader};
use conduit_types::{ConduitError, Duration, Result, SimTime};
use conduit_workloads::Scale;

use crate::mix::{
    policy_code, policy_from_code, put_scheduling, put_spec, put_str, read_scheduling, read_spec,
    read_str, validate_tenant, SloTarget, TenantSpec, TrafficMix,
};
use crate::mix::{workload_code, workload_from_code};

/// Magic bytes opening every serialized trace.
pub const TRACE_MAGIC: [u8; 4] = *b"CTR1";

/// The original trace format version: no per-tenant scheduling block.
/// Still written whenever every tenant uses default scheduling, so legacy
/// traces stay byte-identical.
pub const TRACE_VERSION: u16 = 1;

/// Trace format version carrying the per-tenant scheduling block (weight +
/// SLO targets). Written only when some tenant departs from the defaults.
pub const TRACE_VERSION_V2: u16 = 2;

/// Upper bound on tenants in a serialized trace.
pub const MAX_TENANTS: usize = 1024;

/// One arrival: request number `n` of the trace belongs to tenant
/// `records[n].tenant` and arrives at `records[n].arrival` on the batch
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Index into [`TrafficMix::tenants`].
    pub tenant: u16,
    /// Arrival time on the batch timeline (time zero = batch submission).
    pub arrival: SimTime,
}

/// A replayable traffic trace: the mix that produced it plus every arrival,
/// sorted by `(arrival, tenant)`.
///
/// Traces are value types: two traces are equal iff they replay
/// identically, and [`Trace::to_bytes`] is a pure function of the value, so
/// equal traces serialize to identical bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The tenant mix the records reference by index.
    pub mix: TrafficMix,
    /// The arrivals, sorted by `(arrival, tenant)`.
    pub records: Vec<TraceRecord>,
}

/// A trace instantiated against a [`Session`]: one [`RunRequest`] per trace
/// record, in record order, plus the per-tenant program and device bindings
/// used to build them.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// One request per trace record, in record (arrival) order — ready for
    /// [`Session::submit_batch`].
    pub requests: Vec<RunRequest>,
    /// `tenants[n]` is the tenant index of `requests[n]`.
    pub tenants: Vec<u16>,
    /// Per-tenant registered program ids (parallel to
    /// [`TrafficMix::tenants`]).
    pub programs: Vec<ProgramId>,
    /// Per-tenant device handles (tenants naming the same device share a
    /// handle).
    pub devices: Vec<DeviceHandle>,
}

impl Trace {
    /// Serializes the trace to the CTR1 wire format. The version is
    /// canonical: version 1 whenever every tenant uses default scheduling
    /// (weight 1, no SLOs), version 2 — with the per-tenant scheduling
    /// block — otherwise.
    pub fn to_bytes(&self) -> Vec<u8> {
        let version = if self
            .mix
            .tenants
            .iter()
            .all(TenantSpec::scheduling_is_default)
        {
            TRACE_VERSION
        } else {
            TRACE_VERSION_V2
        };
        let mut out = Vec::new();
        out.extend_from_slice(&TRACE_MAGIC);
        put_u16(&mut out, version);
        put_u32(&mut out, self.mix.scale.data);
        put_u32(&mut out, self.mix.scale.steps);
        put_u16(&mut out, self.mix.tenants.len() as u16);
        for tenant in &self.mix.tenants {
            put_str(&mut out, &tenant.name);
            put_str(&mut out, &tenant.device);
            out.push(workload_code(tenant.workload));
            out.push(policy_code(tenant.policy));
            put_spec(&mut out, &tenant.arrivals);
            if version == TRACE_VERSION_V2 {
                put_scheduling(&mut out, tenant);
            }
        }
        put_u64(&mut out, self.records.len() as u64);
        let mut prev = SimTime::ZERO;
        for record in &self.records {
            debug_assert!(record.arrival >= prev, "records must be sorted");
            put_varint(&mut out, record.arrival.as_ps() - prev.as_ps());
            put_varint(&mut out, u64::from(record.tenant));
            prev = record.arrival;
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes a trace from the CTR1 wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] on any malformed input:
    /// bad magic or version, checksum mismatch, truncation, trailing bytes,
    /// invalid names/codes/specs, record counts that cannot fit in the
    /// remaining bytes, out-of-range tenant indices, or arrival deltas that
    /// overflow the timeline.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 8 {
            return Err(ConduitError::corrupt_checkpoint(
                "trace shorter than its checksum",
            ));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("len 8"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        let mut r = Reader::new(body);
        if r.take(4)? != TRACE_MAGIC {
            return Err(ConduitError::corrupt_checkpoint("bad trace magic"));
        }
        let version = r.u16()?;
        if version != TRACE_VERSION && version != TRACE_VERSION_V2 {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "unsupported trace version {version} (expected {TRACE_VERSION} or {TRACE_VERSION_V2})"
            )));
        }
        let data = r.u32()?;
        let steps = r.u32()?;
        if data == 0 || steps == 0 {
            return Err(ConduitError::corrupt_checkpoint(
                "trace scale has a zero dimension",
            ));
        }
        let tenant_count = r.u16()? as usize;
        if tenant_count > MAX_TENANTS {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "trace declares {tenant_count} tenants (limit {MAX_TENANTS})"
            )));
        }
        let mut tenants = Vec::with_capacity(tenant_count);
        for _ in 0..tenant_count {
            let name = read_str(&mut r)?;
            let device = read_str(&mut r)?;
            let workload = workload_from_code(r.u8()?)?;
            let policy = policy_from_code(r.u8()?)?;
            let arrivals = read_spec(&mut r)?;
            let (weight, slo) = if version == TRACE_VERSION_V2 {
                read_scheduling(&mut r)?
            } else {
                (1, SloTarget::default())
            };
            tenants.push(TenantSpec {
                name,
                device,
                workload,
                policy,
                arrivals,
                weight,
                slo,
            });
        }
        let record_count = r.counter()?;
        // Each record is at least two bytes (one varint byte each for delta
        // and tenant), so a count the remaining bytes cannot hold is corrupt
        // — checked before allocating.
        if record_count > (r.remaining() / 2) as u64 {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "trace declares {record_count} records but only {} bytes remain",
                r.remaining()
            )));
        }
        let mut records = Vec::with_capacity(record_count as usize);
        let mut prev: u64 = 0;
        for _ in 0..record_count {
            let delta = r.varint()?;
            let tenant = r.varint()?;
            if tenant >= tenant_count as u64 {
                return Err(ConduitError::corrupt_checkpoint(format!(
                    "trace record references tenant {tenant} of {tenant_count}"
                )));
            }
            prev = prev.checked_add(delta).ok_or_else(|| {
                ConduitError::corrupt_checkpoint("trace arrival delta overflows the timeline")
            })?;
            records.push(TraceRecord {
                tenant: tenant as u16,
                arrival: SimTime::from_ps(prev),
            });
        }
        if !r.finished() {
            return Err(ConduitError::corrupt_checkpoint(format!(
                "{} trailing bytes after trace records",
                r.remaining()
            )));
        }
        let mix = TrafficMix {
            scale: Scale { data, steps },
            tenants,
        };
        for tenant in &mix.tenants {
            validate_tenant(tenant).map_err(|e| {
                ConduitError::corrupt_checkpoint(format!("trace tenant invalid: {e}"))
            })?;
        }
        Ok(Trace { mix, records })
    }

    /// The arrival of the last record, or `None` for an empty trace.
    pub fn horizon(&self) -> Option<SimTime> {
        self.records.last().map(|r| r.arrival)
    }

    /// Number of records belonging to `tenant`.
    pub fn tenant_records(&self, tenant: u16) -> usize {
        self.records.iter().filter(|r| r.tenant == tenant).count()
    }

    /// Registers every tenant's workload program and device with `session`
    /// and builds one [`RunRequest`] per record, in record order.
    ///
    /// Both [`Session::register`] (content-addressed) and
    /// [`Session::create_device`] (name-keyed) are idempotent, so
    /// instantiating the same trace twice — or two traces sharing tenants —
    /// reuses the same programs and devices. Tenants naming the same device
    /// genuinely share its FIFO lane and die state; that is the
    /// interference configuration.
    ///
    /// Requests are built with the summary percentile set left at its
    /// default; callers needing custom percentiles can map over
    /// [`TraceRun::requests`] afterwards.
    pub fn instantiate(&self, session: &mut Session) -> Result<TraceRun> {
        let mut programs = Vec::with_capacity(self.mix.tenants.len());
        let mut devices = Vec::with_capacity(self.mix.tenants.len());
        for tenant in &self.mix.tenants {
            let program = tenant.workload.program(self.mix.scale)?;
            programs.push(session.register(program)?);
            devices.push(session.create_device(&tenant.device));
        }
        let mut requests = Vec::with_capacity(self.records.len());
        let mut tenants = Vec::with_capacity(self.records.len());
        for record in &self.records {
            let t = record.tenant as usize;
            if t >= programs.len() {
                return Err(ConduitError::invalid_config(format!(
                    "trace record references tenant {t} of {}",
                    programs.len()
                )));
            }
            // The tenant index is the weighted-fair flow id: tenants sharing
            // a device with different weights split its lane by deficit
            // round robin; the all-default case keeps the lane plain FIFO.
            requests.push(
                RunRequest::new(programs[t], self.mix.tenants[t].policy)
                    .on_device(devices[t])
                    .arriving_at(record.arrival)
                    .weighted(record.tenant as u32, self.mix.tenants[t].weight),
            );
            tenants.push(record.tenant);
        }
        Ok(TraceRun {
            requests,
            tenants,
            programs,
            devices,
        })
    }
}

/// Convenience: generates a mix over a horizon and serializes it in one
/// step (the common "export a trace" path).
pub fn export(mix: &TrafficMix, horizon: Duration) -> Result<Vec<u8>> {
    Ok(mix.generate(horizon)?.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ArrivalSpec;
    use conduit::Policy;
    use conduit_workloads::Workload;

    fn sample_mix() -> TrafficMix {
        TrafficMix::new(Scale::test())
            .tenant(TenantSpec::new(
                "victim",
                "shared",
                Workload::Jacobi1d,
                Policy::Conduit,
                ArrivalSpec::Deterministic {
                    interarrival: Duration::from_us(4.0),
                    phase: Duration::ZERO,
                },
            ))
            .tenant(TenantSpec::new(
                "antagonist",
                "shared",
                Workload::LlmTraining,
                Policy::HostCpu,
                ArrivalSpec::MarkovOnOff {
                    burst_interarrival: Duration::from_us(1.0),
                    mean_on: Duration::from_us(10.0),
                    mean_off: Duration::from_us(10.0),
                    seed: 7,
                },
            ))
    }

    fn sample_trace() -> Trace {
        sample_mix().generate(Duration::from_us(40.0)).unwrap()
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let trace = sample_trace();
        assert!(!trace.records.is_empty());
        let bytes = trace.to_bytes();
        // Default scheduling stays on the frozen version-1 encoding.
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), TRACE_VERSION);
        let decoded = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.to_bytes(), bytes, "re-encode must be identical");
    }

    #[test]
    fn weighted_mix_roundtrips_as_version_two() {
        use crate::mix::SloTarget;
        let mut mix = sample_mix();
        mix.tenants[0].weight = 3;
        mix.tenants[1].slo = SloTarget {
            max_p99: Some(Duration::from_us(50.0)),
            max_lane_occupancy: Some(0.9),
        };
        let trace = mix.generate(Duration::from_us(40.0)).unwrap();
        let bytes = trace.to_bytes();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), TRACE_VERSION_V2);
        let decoded = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.to_bytes(), bytes, "re-encode must be identical");
        // Truncation hardening holds for the extended tenant table too.
        for len in 0..bytes.len() {
            assert!(Trace::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = TrafficMix::new(Scale::test())
            .generate(Duration::from_us(1.0))
            .unwrap();
        assert!(trace.records.is_empty());
        let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample_trace().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Trace::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn rejects_bad_magic_version_and_checksum() {
        let trace = sample_trace();
        // Flipping any body byte breaks the checksum; flipping checksum
        // bytes breaks the match. Spot-check the interesting offsets.
        for offset in [0usize, 4, 5] {
            let mut bytes = trace.to_bytes();
            bytes[offset] ^= 0xFF;
            assert!(Trace::from_bytes(&bytes).is_err());
        }
        let mut bytes = trace.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(Trace::from_bytes(&bytes).is_err(), "checksum flip");
    }

    #[test]
    fn rejects_oversized_record_count() {
        // Corrupt the record count to a huge value and re-seal the
        // checksum: the structural count-vs-remaining check must fire.
        let trace = sample_trace();
        let mut bytes = trace.to_bytes();
        bytes.truncate(bytes.len() - 8);
        // The record count sits right before the first record; rebuild the
        // encoding with a lying count instead of patching offsets.
        let mut forged = Vec::new();
        forged.extend_from_slice(&TRACE_MAGIC);
        put_u16(&mut forged, TRACE_VERSION);
        put_u32(&mut forged, trace.mix.scale.data);
        put_u32(&mut forged, trace.mix.scale.steps);
        put_u16(&mut forged, trace.mix.tenants.len() as u16);
        for tenant in &trace.mix.tenants {
            put_str(&mut forged, &tenant.name);
            put_str(&mut forged, &tenant.device);
            forged.push(workload_code(tenant.workload));
            forged.push(policy_code(tenant.policy));
            put_spec(&mut forged, &tenant.arrivals);
        }
        put_u64(&mut forged, 1 << 40);
        let checksum = fnv1a(&forged);
        put_u64(&mut forged, checksum);
        let err = Trace::from_bytes(&forged).unwrap_err();
        assert!(
            err.to_string().contains("records"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn instantiation_is_idempotent_and_shares_devices() {
        let trace = sample_trace();
        let mut session = Session::builder(conduit_types::SsdConfig::small_for_tests())
            .serial()
            .build();
        let run_a = trace.instantiate(&mut session).unwrap();
        let run_b = trace.instantiate(&mut session).unwrap();
        assert_eq!(run_a.programs, run_b.programs);
        assert_eq!(run_a.devices, run_b.devices);
        // Both tenants name "shared", so they resolve to one handle.
        assert_eq!(run_a.devices[0], run_a.devices[1]);
        assert_eq!(run_a.requests.len(), trace.records.len());
    }

    #[test]
    fn replay_is_bit_identical_to_source_batch() {
        let trace = sample_trace();
        let bytes = trace.to_bytes();
        let replayed = Trace::from_bytes(&bytes).unwrap();

        let cfg = conduit_types::SsdConfig::small_for_tests();
        let mut s1 = Session::builder(cfg.clone()).serial().build();
        let run1 = trace.instantiate(&mut s1).unwrap();
        let out1 = s1.submit_batch(&run1.requests).unwrap();

        let mut s2 = Session::builder(cfg).serial().build();
        let run2 = replayed.instantiate(&mut s2).unwrap();
        let out2 = s2.submit_batch(&run2.requests).unwrap();

        assert_eq!(out1.len(), out2.len());
        for (a, b) in out1.iter().zip(&out2) {
            assert_eq!(a.summary, b.summary);
        }
    }
}
