//! Logical and physical storage addresses.
//!
//! All application data is addressed at **logical-page granularity** (§4.4 of
//! the paper): the flash translation layer maps every [`LogicalPageId`] to a
//! [`PhysicalPageAddr`] inside the flash geometry (channel → chip → die →
//! plane → block → page). Vector operands refer to logical pages; the FTL and
//! the coherence machinery decide where the backing bytes currently live.

use std::fmt;

/// Size of a NAND flash page in bytes (Table 2 uses 4 KiB pages; a full
/// 4096-lane × 32-bit vector therefore spans [`PAGES_PER_VECTOR`] pages).
pub const PAGE_BYTES: u64 = 4 * 1024;

/// Number of 4 KiB flash pages covered by one full-width (16 KiB) vector.
pub const PAGES_PER_VECTOR: u64 = 4;

/// Identifier of a logical page in the SSD's logical address space.
///
/// # Examples
///
/// ```
/// use conduit_types::LogicalPageId;
///
/// let lpid = LogicalPageId::new(42);
/// assert_eq!(lpid.index(), 42);
/// assert_eq!(lpid.byte_offset(), 42 * 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalPageId(u64);

impl LogicalPageId {
    /// Creates a logical page id from its index in the logical address space.
    pub const fn new(index: u64) -> Self {
        LogicalPageId(index)
    }

    /// The page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte offset of the start of this page in the logical address
    /// space.
    pub const fn byte_offset(self) -> u64 {
        self.0 * PAGE_BYTES
    }

    /// The logical page containing the given byte offset.
    pub const fn containing(byte_offset: u64) -> Self {
        LogicalPageId(byte_offset / PAGE_BYTES)
    }

    /// The `n`-th page after this one.
    pub const fn offset(self, n: u64) -> Self {
        LogicalPageId(self.0 + n)
    }
}

impl fmt::Display for LogicalPageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LP{}", self.0)
    }
}

impl From<u64> for LogicalPageId {
    fn from(index: u64) -> Self {
        LogicalPageId(index)
    }
}

/// A physical page address inside the NAND flash geometry.
///
/// The ordering of the fields mirrors the structural hierarchy used by the
/// simulator: channel → chip → die → plane → block → page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysicalPageAddr {
    /// Flash channel index.
    pub channel: u8,
    /// Chip index within the channel.
    pub chip: u8,
    /// Die index within the chip.
    pub die: u8,
    /// Plane index within the die.
    pub plane: u8,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u16,
}

impl PhysicalPageAddr {
    /// Creates a physical page address from its coordinates.
    pub const fn new(channel: u8, chip: u8, die: u8, plane: u8, block: u32, page: u16) -> Self {
        PhysicalPageAddr {
            channel,
            chip,
            die,
            plane,
            block,
            page,
        }
    }

    /// Whether two addresses are in the same block (required for
    /// Flash-Cosmos multi-wordline AND: all operands must live in pages of
    /// the same flash block).
    pub fn same_block(self, other: PhysicalPageAddr) -> bool {
        self.channel == other.channel
            && self.chip == other.chip
            && self.die == other.die
            && self.plane == other.plane
            && self.block == other.block
    }

    /// Whether two addresses are in the same plane (required for
    /// Flash-Cosmos inter-block OR: operands must live in different blocks of
    /// the same plane).
    pub fn same_plane(self, other: PhysicalPageAddr) -> bool {
        self.channel == other.channel
            && self.chip == other.chip
            && self.die == other.die
            && self.plane == other.plane
    }

    /// Whether two addresses are on the same die.
    pub fn same_die(self, other: PhysicalPageAddr) -> bool {
        self.channel == other.channel && self.chip == other.chip && self.die == other.die
    }
}

impl fmt::Display for PhysicalPageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/chip{}/die{}/pl{}/blk{}/pg{}",
            self.channel, self.chip, self.die, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_page_offsets() {
        let p = LogicalPageId::new(10);
        assert_eq!(p.byte_offset(), 10 * PAGE_BYTES);
        assert_eq!(LogicalPageId::containing(10 * PAGE_BYTES + 1), p);
        assert_eq!(LogicalPageId::containing(11 * PAGE_BYTES), p.offset(1));
        assert_eq!(LogicalPageId::from(7u64).index(), 7);
    }

    #[test]
    fn physical_addr_relations() {
        let a = PhysicalPageAddr::new(0, 1, 2, 3, 100, 5);
        let same_block = PhysicalPageAddr::new(0, 1, 2, 3, 100, 9);
        let same_plane = PhysicalPageAddr::new(0, 1, 2, 3, 101, 5);
        let other_die = PhysicalPageAddr::new(0, 1, 3, 3, 100, 5);

        assert!(a.same_block(same_block));
        assert!(!a.same_block(same_plane));
        assert!(a.same_plane(same_plane));
        assert!(a.same_die(same_plane));
        assert!(!a.same_die(other_die));
    }

    #[test]
    fn display_formats() {
        assert_eq!(LogicalPageId::new(3).to_string(), "LP3");
        assert_eq!(
            PhysicalPageAddr::new(1, 2, 3, 0, 42, 7).to_string(),
            "ch1/chip2/die3/pl0/blk42/pg7"
        );
    }
}
