//! Little-endian byte-stream helpers shared by every compact serializer in
//! the workspace ([`crate::VectorProgram::to_bytes`], the program registry,
//! and the device-state checkpoints in `conduit-sim`).
//!
//! The encoders are plain `put_*` functions appending to a `Vec<u8>`; the
//! decoder is a bounds-checked [`Reader`] cursor whose every method fails
//! with [`ConduitError::CorruptCheckpoint`] on truncation, so callers never
//! index past the end of an untrusted byte stream. Serializer-specific
//! validation (magics, versions, tags) stays with each format; this module
//! only owns the primitive layer.

use crate::error::{ConduitError, Result};

/// Appends a `u16` in little-endian order.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (exact round trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `u64` as a LEB128 varint (7 value bits per byte, little-endian
/// groups, high bit = continuation). Small values — the common case for the
/// delta-encoded arrival records of traffic traces — take one byte; the
/// worst case is ten.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// FNV-1a over a byte stream: the workspace's content-address hash (program
/// registry deduplication, [`crate::SsdConfig::fingerprint`]). Stable across
/// platforms and releases — checkpoints embed its output.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A bounds-checked little-endian cursor over a serialized byte stream.
///
/// # Examples
///
/// ```
/// use conduit_types::bytes::{put_u32, Reader};
///
/// let mut buf = Vec::new();
/// put_u32(&mut buf, 7);
/// let mut r = Reader::new(&buf);
/// assert_eq!(r.u32()?, 7);
/// assert!(r.finished());
/// # Ok::<(), conduit_types::ConduitError>(())
/// ```
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] if fewer than `n` bytes
    /// remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ConduitError::corrupt_checkpoint("truncated byte stream"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` **counter or timestamp** and rejects implausibly large
    /// values (above `u64::MAX / 4`). Monotonic counters and picosecond
    /// clocks restored from a checkpoint are incremented/added-to after
    /// decoding; bounding them here turns a bit-flipped near-`MAX` value
    /// into a [`ConduitError::CorruptCheckpoint`] instead of a later
    /// arithmetic-overflow panic, while leaving astronomically more
    /// headroom (2⁶² increments, ~53 days of simulated time) than any real
    /// stream reaches.
    pub fn counter(&mut self) -> Result<u64> {
        let value = self.u64()?;
        if value > u64::MAX / 4 {
            return Err(ConduitError::corrupt_checkpoint(
                "counter value is implausibly large",
            ));
        }
        Ok(value)
    }

    /// Reads a LEB128 varint written by [`put_varint`].
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] on truncation, on a
    /// varint longer than ten bytes, and on a ten-byte varint whose final
    /// group overflows 64 bits — every `u64` has exactly one accepted
    /// encoding length, so a decoded stream re-encodes byte-identically.
    pub fn varint(&mut self) -> Result<u64> {
        let mut value: u64 = 0;
        for group in 0..10 {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7F);
            if group == 9 && bits > 1 {
                return Err(ConduitError::corrupt_checkpoint("varint overflows 64 bits"));
            }
            value |= bits << (7 * group);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(ConduitError::corrupt_checkpoint(
            "varint longer than ten bytes",
        ))
    }

    /// Whether every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        buf.push(0xAB);
        put_u16(&mut buf, 0x1234);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.125);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.finished());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert!(r.u32().is_err());
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        // The FNV-1a offset basis: the empty input hashes to it by
        // definition, pinning the implementation against accidental drift
        // (checkpoints embed these hashes).
        assert_eq!(fnv1a(&[]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"conduit"), fnv1a(b"conduit"));
        assert_ne!(fnv1a(b"conduit"), fnv1a(b"conduiT"));
        assert_ne!(fnv1a(&[0]), fnv1a(&[0, 0]));
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v, "value {v}");
            assert!(r.finished(), "value {v} left trailing bytes");
        }
        // Small values are one byte, the maximum is ten.
        let mut small = Vec::new();
        put_varint(&mut small, 42);
        assert_eq!(small.len(), 1);
        let mut max = Vec::new();
        put_varint(&mut max, u64::MAX);
        assert_eq!(max.len(), 10);
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // A lone continuation byte is truncated.
        assert!(Reader::new(&[0x80]).varint().is_err());
        // Ten continuation groups with no terminator.
        assert!(Reader::new(&[0x80; 11]).varint().is_err());
        // Ten-byte varint whose final group carries bits beyond 64.
        let mut overflow = vec![0x80u8; 9];
        overflow.push(0x02);
        assert!(Reader::new(&overflow).varint().is_err());
        // The canonical u64::MAX encoding (final group = 1) is accepted.
        let mut max = vec![0xFFu8; 9];
        max.push(0x01);
        assert_eq!(Reader::new(&max).varint().unwrap(), u64::MAX);
    }

    #[test]
    fn f64_bit_pattern_is_exact() {
        for v in [0.0, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, f64::INFINITY] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            assert_eq!(Reader::new(&buf).f64().unwrap().to_bits(), v.to_bits());
        }
    }
}
