//! Configuration of the simulated SSD and host (Table 2 of the paper).
//!
//! Every latency, bandwidth and energy value that drives the models in the
//! substrate crates lives here, with defaults taken directly from Table 2 and
//! the calibration sources the paper cites (Flash-Cosmos, Ares-Flash,
//! MIMDRAM, ParaBit, Samsung 980 Pro datasheets). Benchmarks and tests can
//! build modified configurations (e.g. for ablations) by mutating the
//! defaults.

use crate::bytes::{put_f64, put_u32, put_u64};
use crate::energy::Energy;
use crate::time::Duration;

/// Appends a [`Duration`] to a canonical encoding as raw picoseconds.
fn put_duration(out: &mut Vec<u8>, d: Duration) {
    put_u64(out, d.as_ps());
}

/// Appends an [`Energy`] to a canonical encoding as the IEEE-754 bit
/// pattern of its nanojoule value (exact).
fn put_energy(out: &mut Vec<u8>, e: Energy) {
    put_f64(out, e.as_nj());
}

/// NAND flash subsystem configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashConfig {
    /// Number of flash channels (each with its own flash controller).
    pub channels: u32,
    /// Number of dies per channel.
    pub dies_per_channel: u32,
    /// Number of planes per die.
    pub planes_per_die: u32,
    /// Number of blocks per plane.
    pub blocks_per_plane: u32,
    /// Number of pages per block (SLC-mode wordlines).
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Per-channel bandwidth between flash dies and the flash controller.
    pub channel_bytes_per_sec: f64,
    /// SLC-mode page read (sensing) latency, `tR`.
    pub t_read: Duration,
    /// SLC-mode page program latency, `tPROG`.
    pub t_program: Duration,
    /// Block erase latency, `tBERS`.
    pub t_erase: Duration,
    /// Multi-wordline-sensing AND/OR latency (Flash-Cosmos).
    pub t_and_or: Duration,
    /// Latch-to-latch transfer latency inside the page buffer (ParaBit /
    /// Ares-Flash).
    pub t_latch_transfer: Duration,
    /// In-flash XOR latency.
    pub t_xor: Duration,
    /// Page-buffer to flash-controller DMA latency for one page.
    pub t_dma: Duration,
    /// Maximum number of operands a single multi-wordline AND can combine
    /// (all operands must be in the same block).
    pub max_and_operands: u32,
    /// Maximum number of operands a single inter-block OR can combine
    /// (operands in different blocks of the same plane).
    pub max_or_operands: u32,
    /// Energy of reading one page per channel.
    pub e_read: Energy,
    /// Energy of programming one page per channel.
    pub e_program: Energy,
    /// Energy of a multi-wordline AND/OR per KiB of data.
    pub e_and_or_per_kib: Energy,
    /// Energy of a latch transfer per KiB of data.
    pub e_latch_per_kib: Energy,
    /// Energy of an in-flash XOR per KiB of data.
    pub e_xor_per_kib: Energy,
    /// Energy of a page DMA transfer per channel.
    pub e_dma: Energy,
}

impl Default for FlashConfig {
    fn default() -> Self {
        FlashConfig {
            channels: 8,
            dies_per_channel: 8,
            planes_per_die: 2,
            blocks_per_plane: 2048,
            pages_per_block: 196,
            page_bytes: crate::addr::PAGE_BYTES,
            channel_bytes_per_sec: 1.2e9,
            t_read: Duration::from_us(22.5),
            t_program: Duration::from_us(400.0),
            t_erase: Duration::from_us(3500.0),
            t_and_or: Duration::from_ns(20.0),
            t_latch_transfer: Duration::from_ns(20.0),
            t_xor: Duration::from_ns(30.0),
            t_dma: Duration::from_us(3.3),
            max_and_operands: 48,
            max_or_operands: 4,
            e_read: Energy::from_uj(20.5),
            e_program: Energy::from_uj(35.0),
            e_and_or_per_kib: Energy::from_nj(10.0),
            e_latch_per_kib: Energy::from_nj(10.0),
            e_xor_per_kib: Energy::from_nj(20.0),
            e_dma: Energy::from_uj(7.656),
        }
    }
}

impl FlashConfig {
    /// Appends every field, in declaration order, to the canonical
    /// encoding behind [`SsdConfig::fingerprint`]. The exhaustive
    /// destructuring (no `..` rest pattern) makes adding a config field
    /// without extending the fingerprint a compile error.
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        let FlashConfig {
            channels,
            dies_per_channel,
            planes_per_die,
            blocks_per_plane,
            pages_per_block,
            page_bytes,
            channel_bytes_per_sec,
            t_read,
            t_program,
            t_erase,
            t_and_or,
            t_latch_transfer,
            t_xor,
            t_dma,
            max_and_operands,
            max_or_operands,
            e_read,
            e_program,
            e_and_or_per_kib,
            e_latch_per_kib,
            e_xor_per_kib,
            e_dma,
        } = self;
        put_u32(out, *channels);
        put_u32(out, *dies_per_channel);
        put_u32(out, *planes_per_die);
        put_u32(out, *blocks_per_plane);
        put_u32(out, *pages_per_block);
        put_u64(out, *page_bytes);
        put_f64(out, *channel_bytes_per_sec);
        put_duration(out, *t_read);
        put_duration(out, *t_program);
        put_duration(out, *t_erase);
        put_duration(out, *t_and_or);
        put_duration(out, *t_latch_transfer);
        put_duration(out, *t_xor);
        put_duration(out, *t_dma);
        put_u32(out, *max_and_operands);
        put_u32(out, *max_or_operands);
        put_energy(out, *e_read);
        put_energy(out, *e_program);
        put_energy(out, *e_and_or_per_kib);
        put_energy(out, *e_latch_per_kib);
        put_energy(out, *e_xor_per_kib);
        put_energy(out, *e_dma);
    }

    /// Total number of dies in the SSD.
    pub fn total_dies(&self) -> u64 {
        self.channels as u64 * self.dies_per_channel as u64
    }

    /// Total number of planes in the SSD.
    pub fn total_planes(&self) -> u64 {
        self.total_dies() * self.planes_per_die as u64
    }

    /// Total physical capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_planes()
            * self.blocks_per_plane as u64
            * self.pages_per_block as u64
            * self.page_bytes
    }

    /// Total number of physical pages.
    pub fn total_pages(&self) -> u64 {
        self.capacity_bytes() / self.page_bytes
    }

    /// Time to move one page across a flash channel.
    pub fn page_transfer_time(&self) -> Duration {
        Duration::for_transfer(self.page_bytes, self.channel_bytes_per_sec)
    }
}

/// SSD-internal DRAM configuration (LPDDR4-1866).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Total DRAM capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of DRAM channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Independently-operating subarrays (mats) per bank that MIMDRAM-style
    /// PuD can drive concurrently.
    pub subarrays_per_bank: u32,
    /// Row (page) size per bank in bytes.
    pub row_bytes: u64,
    /// Clock period.
    pub t_ck: Duration,
    /// ACT to internal read/write delay.
    pub t_rcd: Duration,
    /// Precharge latency.
    pub t_rp: Duration,
    /// Minimum row-active time.
    pub t_ras: Duration,
    /// CAS latency.
    pub t_cl: Duration,
    /// Latency of one bulk bitwise operation (bbop) — one
    /// activate-activate-precharge command triplet (MIMDRAM / Table 2).
    pub t_bbop: Duration,
    /// DRAM data-bus bandwidth available to the controller.
    pub bus_bytes_per_sec: f64,
    /// Energy of one bbop.
    pub e_bbop: Energy,
    /// Energy of one row activation + precharge.
    pub e_act_pre: Energy,
    /// Energy per byte transferred over the DRAM bus.
    pub e_bus_per_byte: Energy,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            capacity_bytes: 2 * 1024 * 1024 * 1024,
            channels: 1,
            ranks: 1,
            banks: 8,
            subarrays_per_bank: 16,
            row_bytes: 8 * 1024,
            t_ck: Duration::from_ns(1.072),
            t_rcd: Duration::from_ns(18.0),
            t_rp: Duration::from_ns(18.0),
            t_ras: Duration::from_ns(42.0),
            t_cl: Duration::from_ns(15.0),
            t_bbop: Duration::from_ns(49.0),
            bus_bytes_per_sec: 7.46e9,
            e_bbop: Energy::from_nj(0.864),
            e_act_pre: Energy::from_nj(2.5),
            e_bus_per_byte: Energy::from_pj(4.0),
        }
    }
}

impl DramConfig {
    /// Appends every field, in declaration order, to the canonical
    /// encoding behind [`SsdConfig::fingerprint`] (exhaustive
    /// destructuring: adding a field without fingerprinting it fails to
    /// compile).
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        let DramConfig {
            capacity_bytes,
            channels,
            ranks,
            banks,
            subarrays_per_bank,
            row_bytes,
            t_ck,
            t_rcd,
            t_rp,
            t_ras,
            t_cl,
            t_bbop,
            bus_bytes_per_sec,
            e_bbop,
            e_act_pre,
            e_bus_per_byte,
        } = self;
        put_u64(out, *capacity_bytes);
        put_u32(out, *channels);
        put_u32(out, *ranks);
        put_u32(out, *banks);
        put_u32(out, *subarrays_per_bank);
        put_u64(out, *row_bytes);
        put_duration(out, *t_ck);
        put_duration(out, *t_rcd);
        put_duration(out, *t_rp);
        put_duration(out, *t_ras);
        put_duration(out, *t_cl);
        put_duration(out, *t_bbop);
        put_f64(out, *bus_bytes_per_sec);
        put_energy(out, *e_bbop);
        put_energy(out, *e_act_pre);
        put_energy(out, *e_bus_per_byte);
    }

    /// Total number of independently operating banks.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks
    }

    /// Total number of concurrent PuD compute units (bank × subarray
    /// combinations that can each execute one row-granular sub-operation).
    pub fn compute_units(&self) -> u32 {
        self.total_banks() * self.subarrays_per_bank.max(1)
    }

    /// Number of 32-bit elements one bank row holds (the natural PuD
    /// sub-operation width; 8 KiB rows hold 2048 such elements).
    pub fn elems_per_row(&self, elem_bits: u32) -> u32 {
        (self.row_bytes * 8 / elem_bits as u64) as u32
    }

    /// Time to move `bytes` over the DRAM bus.
    pub fn bus_transfer_time(&self, bytes: u64) -> Duration {
        Duration::for_transfer(bytes, self.bus_bytes_per_sec)
    }
}

/// SSD controller (embedded core) configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlConfig {
    /// Number of embedded cores (ARM Cortex-R8 class).
    pub cores: u32,
    /// Number of cores available for offloaded computation (the rest run the
    /// FTL, host communication, and Conduit's offloader — paper footnote 3).
    pub compute_cores: u32,
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// SIMD (MVE) datapath width in bytes.
    pub mve_bytes: u32,
    /// Cycles per simple ALU/bitwise vector micro-op.
    pub cycles_simple: u32,
    /// Cycles per multiply vector micro-op.
    pub cycles_mul: u32,
    /// Cycles per divide vector micro-op.
    pub cycles_div: u32,
    /// Cycles to load/store one MVE vector register from controller SRAM.
    pub cycles_mem: u32,
    /// Active power of one core in watts.
    pub core_power_w: f64,
    /// SRAM scratchpad size in bytes available for operand staging.
    pub sram_bytes: u64,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            cores: 5,
            compute_cores: 1,
            freq_hz: 1.5e9,
            mve_bytes: 32,
            cycles_simple: 1,
            cycles_mul: 2,
            cycles_div: 12,
            cycles_mem: 3,
            core_power_w: 0.35,
            sram_bytes: 512 * 1024,
        }
    }
}

impl CtrlConfig {
    /// Appends every field, in declaration order, to the canonical
    /// encoding behind [`SsdConfig::fingerprint`] (exhaustive
    /// destructuring: adding a field without fingerprinting it fails to
    /// compile).
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        let CtrlConfig {
            cores,
            compute_cores,
            freq_hz,
            mve_bytes,
            cycles_simple,
            cycles_mul,
            cycles_div,
            cycles_mem,
            core_power_w,
            sram_bytes,
        } = self;
        put_u32(out, *cores);
        put_u32(out, *compute_cores);
        put_f64(out, *freq_hz);
        put_u32(out, *mve_bytes);
        put_u32(out, *cycles_simple);
        put_u32(out, *cycles_mul);
        put_u32(out, *cycles_div);
        put_u32(out, *cycles_mem);
        put_f64(out, *core_power_w);
        put_u64(out, *sram_bytes);
    }

    /// Duration of `cycles` core clock cycles.
    pub fn cycles(&self, cycles: u64) -> Duration {
        Duration::from_cycles(cycles, self.freq_hz)
    }

    /// Number of elements processed per MVE micro-op for the given element
    /// width.
    pub fn lanes_per_uop(&self, elem_bits: u32) -> u32 {
        (self.mve_bytes * 8 / elem_bits).max(1)
    }
}

/// Host ↔ SSD link (NVMe over PCIe) configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HostLinkConfig {
    /// PCIe payload bandwidth in bytes per second (PCIe 4.0 x4 ≈ 8 GB/s).
    pub pcie_bytes_per_sec: f64,
    /// Fixed NVMe command submission + completion overhead per request
    /// (amortized over the deep queues OSP uses for streaming reads).
    pub nvme_cmd_latency: Duration,
    /// Energy per byte moved over the host link (controller + PHY + host).
    pub e_per_byte: Energy,
}

impl Default for HostLinkConfig {
    fn default() -> Self {
        HostLinkConfig {
            pcie_bytes_per_sec: 8e9,
            nvme_cmd_latency: Duration::from_us(2.0),
            e_per_byte: Energy::from_pj(15.0),
        }
    }
}

impl HostLinkConfig {
    /// Appends every field, in declaration order, to the canonical
    /// encodings behind [`SsdConfig::fingerprint`] and
    /// [`HostConfig::fingerprint`] (exhaustive destructuring: adding a
    /// field without fingerprinting it fails to compile).
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        let HostLinkConfig {
            pcie_bytes_per_sec,
            nvme_cmd_latency,
            e_per_byte,
        } = self;
        put_f64(out, *pcie_bytes_per_sec);
        put_duration(out, *nvme_cmd_latency);
        put_energy(out, *e_per_byte);
    }

    /// Time to move `bytes` over the host link, excluding command overhead.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::for_transfer(bytes, self.pcie_bytes_per_sec)
    }
}

/// Host CPU configuration (Intel Xeon Gold 5118 class).
#[derive(Debug, Clone, PartialEq)]
pub struct HostCpuConfig {
    /// Number of cores used by the workload.
    pub cores: u32,
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// SIMD width in bytes (AVX2 = 32 B).
    pub simd_bytes: u32,
    /// Sustained vector micro-ops per cycle per core.
    pub uops_per_cycle: f64,
    /// Main-memory bandwidth in bytes per second.
    pub mem_bytes_per_sec: f64,
    /// Package power attributable to the workload, in watts.
    pub power_w: f64,
}

impl Default for HostCpuConfig {
    fn default() -> Self {
        HostCpuConfig {
            cores: 6,
            freq_hz: 3.2e9,
            simd_bytes: 32,
            uops_per_cycle: 2.0,
            mem_bytes_per_sec: 19.2e9,
            power_w: 105.0,
        }
    }
}

/// Host GPU configuration (NVIDIA A100 class).
#[derive(Debug, Clone, PartialEq)]
pub struct HostGpuConfig {
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// SM clock frequency in Hz.
    pub freq_hz: f64,
    /// 32-bit lanes per SM.
    pub lanes_per_sm: u32,
    /// Device memory bandwidth in bytes per second (HBM2).
    pub mem_bytes_per_sec: f64,
    /// Kernel-launch overhead per offloaded region.
    pub kernel_launch: Duration,
    /// Board power attributable to the workload, in watts.
    pub power_w: f64,
}

impl Default for HostGpuConfig {
    fn default() -> Self {
        HostGpuConfig {
            sms: 108,
            freq_hz: 1.4e9,
            lanes_per_sm: 64,
            mem_bytes_per_sec: 1.55e12,
            kernel_launch: Duration::from_us(8.0),
            power_w: 250.0,
        }
    }
}

impl HostCpuConfig {
    /// Appends every field, in declaration order, to the canonical
    /// encoding behind [`HostConfig::fingerprint`] (exhaustive
    /// destructuring: adding a field without fingerprinting it fails to
    /// compile).
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        let HostCpuConfig {
            cores,
            freq_hz,
            simd_bytes,
            uops_per_cycle,
            mem_bytes_per_sec,
            power_w,
        } = self;
        put_u32(out, *cores);
        put_f64(out, *freq_hz);
        put_u32(out, *simd_bytes);
        put_f64(out, *uops_per_cycle);
        put_f64(out, *mem_bytes_per_sec);
        put_f64(out, *power_w);
    }
}

impl HostGpuConfig {
    /// Appends every field, in declaration order, to the canonical
    /// encoding behind [`HostConfig::fingerprint`] (exhaustive
    /// destructuring: adding a field without fingerprinting it fails to
    /// compile).
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        let HostGpuConfig {
            sms,
            freq_hz,
            lanes_per_sm,
            mem_bytes_per_sec,
            kernel_launch,
            power_w,
        } = self;
        put_u32(out, *sms);
        put_f64(out, *freq_hz);
        put_u32(out, *lanes_per_sm);
        put_f64(out, *mem_bytes_per_sec);
        put_duration(out, *kernel_launch);
        put_f64(out, *power_w);
    }
}

/// Host-side configuration (CPU, GPU and the link to the SSD).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HostConfig {
    /// Host CPU model parameters.
    pub cpu: HostCpuConfig,
    /// Host GPU model parameters.
    pub gpu: HostGpuConfig,
    /// Host ↔ SSD link parameters.
    pub link: HostLinkConfig,
}

impl HostConfig {
    /// A stable content fingerprint of the whole host configuration, the
    /// counterpart of [`SsdConfig::fingerprint`]: FNV-1a over a canonical
    /// little-endian encoding of every field. Device checkpoints embed a
    /// combined SSD+host fingerprint, because host-policy service times
    /// (and therefore a warm device's stream clock) depend on the host
    /// rooflines too.
    pub fn fingerprint(&self) -> u64 {
        let HostConfig { cpu, gpu, link } = self;
        let mut canonical = Vec::with_capacity(128);
        cpu.encode_canonical(&mut canonical);
        gpu.encode_canonical(&mut canonical);
        link.encode_canonical(&mut canonical);
        crate::bytes::fnv1a(&canonical)
    }
}

/// Runtime overhead parameters of Conduit's offloader (§4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct OffloaderOverheadConfig {
    /// L2P table lookup when the mapping entry is cached in SSD DRAM.
    pub l2p_lookup_dram: Duration,
    /// L2P table lookup when the mapping entry must be fetched from flash.
    pub l2p_lookup_flash: Duration,
    /// Tracking data-dependence delay, per execution queue inspected.
    pub dependence_tracking_per_queue: Duration,
    /// Tracking resource queueing delay, per resource.
    pub queue_tracking_per_resource: Duration,
    /// Lookup of the precomputed data-movement latency table.
    pub dm_table_lookup: Duration,
    /// Lookup of the precomputed computation latency table.
    pub comp_table_lookup: Duration,
    /// Instruction-transformation translation-table lookup.
    pub transform_lookup: Duration,
}

impl Default for OffloaderOverheadConfig {
    fn default() -> Self {
        OffloaderOverheadConfig {
            l2p_lookup_dram: Duration::from_ns(100.0),
            l2p_lookup_flash: Duration::from_us(30.0),
            dependence_tracking_per_queue: Duration::from_us(1.0),
            queue_tracking_per_resource: Duration::from_us(1.0),
            dm_table_lookup: Duration::from_ns(100.0),
            comp_table_lookup: Duration::from_ns(150.0),
            transform_lookup: Duration::from_ns(300.0),
        }
    }
}

impl OffloaderOverheadConfig {
    /// Appends every field, in declaration order, to the canonical
    /// encoding behind [`SsdConfig::fingerprint`] (exhaustive
    /// destructuring: adding a field without fingerprinting it fails to
    /// compile).
    fn encode_canonical(&self, out: &mut Vec<u8>) {
        let OffloaderOverheadConfig {
            l2p_lookup_dram,
            l2p_lookup_flash,
            dependence_tracking_per_queue,
            queue_tracking_per_resource,
            dm_table_lookup,
            comp_table_lookup,
            transform_lookup,
        } = self;
        put_duration(out, *l2p_lookup_dram);
        put_duration(out, *l2p_lookup_flash);
        put_duration(out, *dependence_tracking_per_queue);
        put_duration(out, *queue_tracking_per_resource);
        put_duration(out, *dm_table_lookup);
        put_duration(out, *comp_table_lookup);
        put_duration(out, *transform_lookup);
    }
}

/// Full configuration of the simulated SSD.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// NAND flash subsystem.
    pub flash: FlashConfig,
    /// SSD-internal DRAM subsystem.
    pub dram: DramConfig,
    /// SSD controller cores.
    pub ctrl: CtrlConfig,
    /// Host link.
    pub link: HostLinkConfig,
    /// Offloader overhead parameters.
    pub overheads: OffloaderOverheadConfig,
    /// Fraction of L2P lookups that hit the DFTL mapping cache in DRAM.
    pub l2p_cache_hit_rate: f64,
}

impl SsdConfig {
    /// A configuration scaled down for fast unit/integration tests: the
    /// geometry is reduced (fewer channels/dies/blocks) while all latencies
    /// and energies keep their Table 2 values, so behaviour shapes are
    /// preserved.
    pub fn small_for_tests() -> Self {
        let mut cfg = SsdConfig::default();
        cfg.flash.channels = 2;
        cfg.flash.dies_per_channel = 2;
        cfg.flash.planes_per_die = 2;
        cfg.flash.blocks_per_plane = 64;
        cfg.flash.pages_per_block = 64;
        cfg.dram.capacity_bytes = 16 * 1024 * 1024;
        cfg
    }

    /// User-visible logical capacity of the SSD in bytes (the paper's 2 TB
    /// device; physical capacity includes over-provisioning).
    pub fn logical_capacity_bytes(&self) -> u64 {
        // 93.75% of physical capacity exposed (6.25% over-provisioning).
        self.flash.capacity_bytes() / 16 * 15
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.logical_capacity_bytes() / self.flash.page_bytes
    }

    /// A stable content fingerprint of the **whole** configuration: FNV-1a
    /// over a canonical little-endian encoding of every field (geometry,
    /// latencies, bandwidths, energies — durations as raw picoseconds,
    /// floats as IEEE-754 bit patterns, so no rounding can alias two
    /// different configurations).
    ///
    /// Device checkpoints embed this value: importing a checkpoint into a
    /// session whose configuration differs *at all* — even when the
    /// geometry (and therefore the checkpoint shape) matches — is rejected
    /// as corrupt instead of silently replaying under different timings.
    pub fn fingerprint(&self) -> u64 {
        let SsdConfig {
            flash,
            dram,
            ctrl,
            link,
            overheads,
            l2p_cache_hit_rate,
        } = self;
        let mut canonical = Vec::with_capacity(512);
        flash.encode_canonical(&mut canonical);
        dram.encode_canonical(&mut canonical);
        ctrl.encode_canonical(&mut canonical);
        link.encode_canonical(&mut canonical);
        overheads.encode_canonical(&mut canonical);
        put_f64(&mut canonical, *l2p_cache_hit_rate);
        crate::bytes::fnv1a(&canonical)
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            flash: FlashConfig::default(),
            dram: DramConfig::default(),
            ctrl: CtrlConfig::default(),
            link: HostLinkConfig::default(),
            overheads: OffloaderOverheadConfig::default(),
            l2p_cache_hit_rate: 0.95,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_flash_matches_table2() {
        let f = FlashConfig::default();
        assert_eq!(f.channels, 8);
        assert_eq!(f.dies_per_channel, 8);
        assert_eq!(f.planes_per_die, 2);
        assert_eq!(f.t_read, Duration::from_us(22.5));
        assert_eq!(f.t_program, Duration::from_us(400.0));
        assert_eq!(f.t_and_or, Duration::from_ns(20.0));
        assert_eq!(f.t_xor, Duration::from_ns(30.0));
        // 8 ch * 8 dies * 2 planes * 2048 blocks * 196 pages * 4 KiB ≈ 0.21 TB
        // (Table 2's per-component numbers; the headline 2 TB assumes TLC
        // multi-page wordlines, which we run in SLC mode as the paper does
        // for NDP.)
        let cap_gb = f.capacity_bytes() as f64 / 1e9;
        assert!(cap_gb > 100.0, "capacity = {cap_gb} GB");
    }

    #[test]
    fn default_dram_matches_table2() {
        let d = DramConfig::default();
        assert_eq!(d.capacity_bytes, 2 * 1024 * 1024 * 1024);
        assert_eq!(d.banks, 8);
        assert_eq!(d.t_bbop, Duration::from_ns(49.0));
        assert_eq!(d.elems_per_row(32), 2048);
        assert_eq!(d.total_banks(), 8);
    }

    #[test]
    fn ctrl_lane_math() {
        let c = CtrlConfig::default();
        assert_eq!(c.lanes_per_uop(32), 8);
        assert_eq!(c.lanes_per_uop(8), 32);
        assert_eq!(c.cycles(1500), Duration::from_us(1.0));
    }

    #[test]
    fn link_transfer_time() {
        let l = HostLinkConfig::default();
        // 16 KiB over 8 GB/s ≈ 2.05 us
        let t = l.transfer_time(16 * 1024);
        assert!((t.as_us() - 2.048).abs() < 0.01);
    }

    #[test]
    fn ssd_capacity_and_test_config() {
        let cfg = SsdConfig::default();
        assert!(cfg.logical_pages() > 0);
        assert!(cfg.logical_capacity_bytes() < cfg.flash.capacity_bytes());

        let small = SsdConfig::small_for_tests();
        assert!(small.flash.capacity_bytes() < cfg.flash.capacity_bytes());
        // Latencies are untouched in the small config.
        assert_eq!(small.flash.t_read, cfg.flash.t_read);
    }

    #[test]
    fn fingerprint_distinguishes_timings_not_just_shapes() {
        let cfg = SsdConfig::default();
        assert_eq!(cfg.fingerprint(), SsdConfig::default().fingerprint());
        assert_eq!(cfg.fingerprint(), cfg.clone().fingerprint());
        assert_ne!(
            cfg.fingerprint(),
            SsdConfig::small_for_tests().fingerprint()
        );

        // Same geometry (same checkpoint *shape*), different timing: the
        // fingerprint must still differ — this is exactly the silent
        // mismatch the structural import check could not catch.
        let mut slow_read = cfg.clone();
        slow_read.flash.t_read = Duration::from_us(30.0);
        assert_ne!(cfg.fingerprint(), slow_read.fingerprint());

        let mut hit_rate = cfg.clone();
        hit_rate.l2p_cache_hit_rate = 0.9;
        assert_ne!(cfg.fingerprint(), hit_rate.fingerprint());

        let mut energy = cfg;
        energy.dram.e_bbop = Energy::from_nj(0.865);
        assert_ne!(SsdConfig::default().fingerprint(), energy.fingerprint());
    }

    #[test]
    fn host_fingerprint_distinguishes_rooflines() {
        let host = HostConfig::default();
        assert_eq!(host.fingerprint(), HostConfig::default().fingerprint());

        let mut faster_link = host.clone();
        faster_link.link.pcie_bytes_per_sec *= 2.0;
        assert_ne!(host.fingerprint(), faster_link.fingerprint());

        let mut slower_cpu = host.clone();
        slower_cpu.cpu.freq_hz /= 2.0;
        assert_ne!(host.fingerprint(), slower_cpu.fingerprint());

        let mut gpu_launch = host.clone();
        gpu_launch.gpu.kernel_launch = Duration::from_us(16.0);
        assert_ne!(host.fingerprint(), gpu_launch.fingerprint());
    }

    #[test]
    fn page_transfer_over_flash_channel() {
        let f = FlashConfig::default();
        // 4 KiB over 1.2 GB/s ≈ 3.41 us
        let t = f.page_transfer_time();
        assert!((t.as_us() - 3.413).abs() < 0.01);
    }
}
