//! Energy accounting units.
//!
//! All energy is tracked in nanojoules stored as `f64`, which gives ample
//! dynamic range: per-operation energies in the model span from fractions of
//! a nanojoule (a DRAM bulk-bitwise operation, 0.864 nJ) to tens of
//! microjoules (a flash channel read, 20.5 µJ), and whole-workload totals
//! reach joules.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An amount of energy, stored in nanojoules.
///
/// # Examples
///
/// ```
/// use conduit_types::Energy;
///
/// let flash_read = Energy::from_uj(20.5);
/// let bbop = Energy::from_nj(0.864);
/// assert!(flash_read > bbop);
/// assert_eq!((bbop + bbop).as_nj(), 1.728);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy value from picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj / 1_000.0)
    }

    /// Creates an energy value from nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj)
    }

    /// Creates an energy value from microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Energy(uj * 1_000.0)
    }

    /// Creates an energy value from millijoules.
    pub fn from_mj(mj: f64) -> Self {
        Energy(mj * 1_000_000.0)
    }

    /// Creates an energy value from joules.
    pub fn from_j(j: f64) -> Self {
        Energy(j * 1e9)
    }

    /// Energy dissipated by `watts` of power over `dur`.
    ///
    /// ```
    /// use conduit_types::{Duration, Energy};
    /// // 2 W for 1 us = 2 uJ
    /// let e = Energy::from_power(2.0, Duration::from_us(1.0));
    /// assert_eq!(e, Energy::from_uj(2.0));
    /// ```
    pub fn from_power(watts: f64, dur: crate::time::Duration) -> Self {
        Energy::from_j(watts * dur.as_secs())
    }

    /// The value in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0
    }

    /// The value in microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 / 1_000.0
    }

    /// The value in millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// The value in joules.
    pub fn as_j(self) -> f64 {
        self.0 / 1e9
    }

    /// Whether this value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

/// The device component an energy contribution is attributed to.
///
/// Replaces the string-keyed attribution the meter used to do: each source
/// has a dense index, so per-source accounting is a fixed-size array lookup
/// with no heap allocation on the simulator's per-instruction hot path.
///
/// # Examples
///
/// ```
/// use conduit_types::EnergySource;
///
/// assert!(EnergySource::Ifp.is_compute());
/// assert!(!EnergySource::HostLink.is_compute());
/// assert_eq!(EnergySource::ALL[EnergySource::DramBus.index()], EnergySource::DramBus);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergySource {
    /// In-flash processing compute.
    Ifp,
    /// Processing-using-DRAM compute.
    Pud,
    /// Controller-core (ISP) compute.
    Isp,
    /// The offloader core's own feature collection / transformation work.
    Offloader,
    /// NVMe/PCIe host-link transfers.
    HostLink,
    /// Flash page reads performed to move data.
    FlashRead,
    /// Flash programs committing dirty pages back to flash (incl. GC).
    FlashCommit,
    /// Flash programs of anonymous intermediate values.
    FlashProgram,
    /// SSD-internal DRAM bus transfers.
    DramBus,
}

impl EnergySource {
    /// All sources, in dense-index order.
    pub const ALL: [EnergySource; 9] = [
        EnergySource::Ifp,
        EnergySource::Pud,
        EnergySource::Isp,
        EnergySource::Offloader,
        EnergySource::HostLink,
        EnergySource::FlashRead,
        EnergySource::FlashCommit,
        EnergySource::FlashProgram,
        EnergySource::DramBus,
    ];

    /// Number of distinct sources (the size of a per-source array).
    pub const COUNT: usize = Self::ALL.len();

    /// The dense index of this source in `[0, COUNT)`.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether energy from this source is computation (as opposed to data
    /// movement).
    pub const fn is_compute(self) -> bool {
        matches!(
            self,
            EnergySource::Ifp | EnergySource::Pud | EnergySource::Isp | EnergySource::Offloader
        )
    }

    /// Short machine-readable name, used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            EnergySource::Ifp => "ifp",
            EnergySource::Pud => "pud",
            EnergySource::Isp => "isp",
            EnergySource::Offloader => "offloader",
            EnergySource::HostLink => "host-link",
            EnergySource::FlashRead => "flash-read",
            EnergySource::FlashCommit => "flash-commit",
            EnergySource::FlashProgram => "flash-program",
            EnergySource::DramBus => "dram-bus",
        }
    }
}

impl fmt::Display for EnergySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: u64) -> Energy {
        Energy(self.0 * rhs as f64)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nj = self.0.abs();
        if nj >= 1e9 {
            write!(f, "{:.3} J", self.as_j())
        } else if nj >= 1e6 {
            write!(f, "{:.3} mJ", self.as_mj())
        } else if nj >= 1e3 {
            write!(f, "{:.3} uJ", self.as_uj())
        } else {
            write!(f, "{:.3} nJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn energy_source_indices_are_dense_and_stable() {
        for (i, s) in EnergySource::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(EnergySource::COUNT, 9);
        // Exactly the four compute sources.
        let compute = EnergySource::ALL.iter().filter(|s| s.is_compute()).count();
        assert_eq!(compute, 4);
        assert_eq!(EnergySource::HostLink.to_string(), "host-link");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Energy::from_pj(1_000.0).as_nj(), 1.0);
        assert_eq!(Energy::from_uj(1.0).as_nj(), 1_000.0);
        assert_eq!(Energy::from_mj(1.0).as_uj(), 1_000.0);
        assert_eq!(Energy::from_j(1.0).as_mj(), 1_000.0);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_nj(2.0);
        let b = Energy::from_nj(3.0);
        assert_eq!((a + b).as_nj(), 5.0);
        assert_eq!((b - a).as_nj(), 1.0);
        assert_eq!((a * 4.0).as_nj(), 8.0);
        assert_eq!((a * 4u64).as_nj(), 8.0);
        assert_eq!((b / 3.0).as_nj(), 1.0);
        let total: Energy = [a, b].into_iter().sum();
        assert_eq!(total.as_nj(), 5.0);
    }

    #[test]
    fn power_integration() {
        // 5 W over 2 ms = 10 mJ
        let e = Energy::from_power(5.0, Duration::from_ms(2.0));
        assert!((e.as_mj() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_uses_sensible_units() {
        assert_eq!(format!("{}", Energy::from_nj(0.864)), "0.864 nJ");
        assert_eq!(format!("{}", Energy::from_uj(20.5)), "20.500 uJ");
        assert_eq!(format!("{}", Energy::from_mj(1.5)), "1.500 mJ");
        assert_eq!(format!("{}", Energy::from_j(2.0)), "2.000 J");
    }
}
