//! Error types shared across the Conduit workspace.

use crate::addr::LogicalPageId;
use crate::inst::InstId;
use crate::op::OpType;
use crate::resource::Resource;
use std::fmt;

/// Convenience alias for results with [`ConduitError`].
pub type Result<T> = std::result::Result<T, ConduitError>;

/// Errors produced by the Conduit framework and its substrate models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConduitError {
    /// An operation was dispatched to a resource that cannot execute it.
    UnsupportedOperation {
        /// The offending operation.
        op: OpType,
        /// The resource that was asked to execute it.
        resource: Resource,
    },
    /// A logical page outside the device's logical address space was
    /// referenced.
    PageOutOfRange {
        /// The offending page.
        page: LogicalPageId,
        /// Number of logical pages the device exposes.
        capacity_pages: u64,
    },
    /// A logical page was accessed before any data was written or registered
    /// for it.
    UnmappedPage {
        /// The offending page.
        page: LogicalPageId,
    },
    /// The device ran out of free physical pages (garbage collection could
    /// not reclaim enough space).
    OutOfSpace,
    /// A vector program failed validation.
    InvalidProgram {
        /// Human-readable description of the structural problem.
        reason: String,
    },
    /// An instruction referenced a result that has not been produced.
    MissingResult {
        /// The instruction whose result is missing.
        inst: InstId,
    },
    /// A simulation invariant was violated (indicates a bug in a model).
    Simulation {
        /// Human-readable description.
        reason: String,
    },
    /// A configuration value is invalid or inconsistent.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// A serialized checkpoint (device state, resource timeline, FTL image)
    /// is truncated, has a bad magic/version, or does not match the
    /// configuration it is being restored into.
    CorruptCheckpoint {
        /// Human-readable description.
        reason: String,
    },
    /// The device retired more flash blocks than its spare budget and is in
    /// the degraded (read-only) health state: writes are rejected, reads of
    /// already-written data are still served.
    DeviceDegraded {
        /// Blocks retired so far.
        retired_blocks: u64,
        /// The spare-block budget that was exhausted.
        spare_blocks: u64,
    },
    /// A request was shed by admission control: serving it would violate the
    /// tenant's SLO targets (max p99, max lane occupancy) given the lane's
    /// windowed statistics. Sheds are expected, counted events — the request
    /// simply did not run; the session and its devices are unchanged.
    AdmissionRejected {
        /// The tenant whose request was shed.
        tenant: String,
        /// Which SLO check failed, human-readable.
        reason: String,
    },
}

impl ConduitError {
    /// Creates an [`ConduitError::InvalidProgram`] from any displayable
    /// reason.
    pub fn invalid_program(reason: impl fmt::Display) -> Self {
        ConduitError::InvalidProgram {
            reason: reason.to_string(),
        }
    }

    /// Creates a [`ConduitError::Simulation`] from any displayable reason.
    pub fn simulation(reason: impl fmt::Display) -> Self {
        ConduitError::Simulation {
            reason: reason.to_string(),
        }
    }

    /// Creates an [`ConduitError::InvalidConfig`] from any displayable
    /// reason.
    pub fn invalid_config(reason: impl fmt::Display) -> Self {
        ConduitError::InvalidConfig {
            reason: reason.to_string(),
        }
    }

    /// Creates a [`ConduitError::CorruptCheckpoint`] from any displayable
    /// reason.
    pub fn corrupt_checkpoint(reason: impl fmt::Display) -> Self {
        ConduitError::CorruptCheckpoint {
            reason: reason.to_string(),
        }
    }

    /// Creates a [`ConduitError::AdmissionRejected`] for a tenant from any
    /// displayable reason.
    pub fn admission_rejected(tenant: impl Into<String>, reason: impl fmt::Display) -> Self {
        ConduitError::AdmissionRejected {
            tenant: tenant.into(),
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for ConduitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConduitError::UnsupportedOperation { op, resource } => {
                write!(f, "operation {op} is not supported by {resource}")
            }
            ConduitError::PageOutOfRange {
                page,
                capacity_pages,
            } => write!(
                f,
                "logical page {page} is outside the device capacity of {capacity_pages} pages"
            ),
            ConduitError::UnmappedPage { page } => {
                write!(f, "logical page {page} has no mapping")
            }
            ConduitError::OutOfSpace => write!(f, "no free physical pages available"),
            ConduitError::InvalidProgram { reason } => {
                write!(f, "invalid vector program: {reason}")
            }
            ConduitError::MissingResult { inst } => {
                write!(f, "result of instruction {inst} is not available")
            }
            ConduitError::Simulation { reason } => write!(f, "simulation error: {reason}"),
            ConduitError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            ConduitError::CorruptCheckpoint { reason } => {
                write!(f, "corrupt checkpoint: {reason}")
            }
            ConduitError::DeviceDegraded {
                retired_blocks,
                spare_blocks,
            } => write!(
                f,
                "device is degraded and read-only ({retired_blocks} blocks retired, spare budget {spare_blocks})"
            ),
            ConduitError::AdmissionRejected { tenant, reason } => {
                write!(f, "admission rejected for tenant {tenant}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConduitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_messages() {
        let errs: Vec<ConduitError> = vec![
            ConduitError::UnsupportedOperation {
                op: OpType::Div,
                resource: Resource::Ifp,
            },
            ConduitError::PageOutOfRange {
                page: LogicalPageId::new(10),
                capacity_pages: 5,
            },
            ConduitError::UnmappedPage {
                page: LogicalPageId::new(1),
            },
            ConduitError::OutOfSpace,
            ConduitError::invalid_program("forward reference"),
            ConduitError::MissingResult {
                inst: InstId::new(3),
            },
            ConduitError::simulation("event queue empty"),
            ConduitError::invalid_config("zero channels"),
            ConduitError::corrupt_checkpoint("truncated byte stream"),
            ConduitError::DeviceDegraded {
                retired_blocks: 9,
                spare_blocks: 8,
            },
            ConduitError::admission_rejected("tenant-a", "windowed occupancy 0.97 > 0.9"),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConduitError>();
    }
}
