//! Deterministic fault injection: configuration, replayable random plan,
//! and device health states.
//!
//! A [`FaultConfig`] describes *what* can go wrong (program/erase/read/die
//! failure rates, wear sensitivity, the retry ladder depth and the
//! spare-block budget); a [`FaultPlan`] decides *when*, by drawing from a
//! splitmix64 stream that is a pure function of `(seed, draw index)`. The
//! plan therefore serializes as just its seed and cursor, and a restored
//! plan continues the exact sequence the exported one would have produced —
//! the property that lets a degraded device survive an export/import cycle
//! bit-identically.
//!
//! The all-zero default configuration is **inert**: no rate draws happen at
//! all when a rate is zero, so a zero-fault device is bit-identical to one
//! built before fault injection existed.

use crate::bytes::{put_f64, put_u32, put_u64, Reader};
use crate::error::{ConduitError, Result};

/// Health of a simulated device's flash subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceHealth {
    /// The spare-block reserve covers every retired block.
    #[default]
    Healthy,
    /// The device retired more blocks than its spare budget: it is
    /// read-only. Writes are rejected with
    /// [`ConduitError::DeviceDegraded`]; reads of already-written data are
    /// still served.
    Degraded,
}

impl DeviceHealth {
    /// Whether the device has exhausted its spare blocks.
    pub fn is_degraded(self) -> bool {
        self == DeviceHealth::Degraded
    }

    /// The single-byte checkpoint encoding.
    pub fn encode(self) -> u8 {
        match self {
            DeviceHealth::Healthy => 0,
            DeviceHealth::Degraded => 1,
        }
    }

    /// Decodes the value written by [`DeviceHealth::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] for unknown codes.
    pub fn decode(code: u8) -> Result<Self> {
        match code {
            0 => Ok(DeviceHealth::Healthy),
            1 => Ok(DeviceHealth::Degraded),
            v => Err(ConduitError::corrupt_checkpoint(format!(
                "unknown device-health code {v}"
            ))),
        }
    }
}

impl std::fmt::Display for DeviceHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceHealth::Healthy => write!(f, "healthy"),
            DeviceHealth::Degraded => write!(f, "degraded"),
        }
    }
}

/// Fault-injection configuration for one device.
///
/// All rates are per-operation probabilities in `[0, 1]`. The default is
/// all-zero (no faults, no random draws) — attach a non-default config via
/// the session builder or `create_device_with_faults` to enable injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the device's [`FaultPlan`]. Two devices with the same seed
    /// and the same request stream fail identically.
    pub seed: u64,
    /// Probability that a page program fails (the block is then retired and
    /// the write retried on a fresh block).
    pub program_fail_rate: f64,
    /// Probability that a block erase fails during garbage collection (the
    /// victim is retired instead of erased).
    pub erase_fail_rate: f64,
    /// Probability that a page read needs a retry; retries repeat the roll,
    /// so the retry count is geometric, capped at
    /// [`FaultConfig::max_read_retries`].
    pub read_transient_rate: f64,
    /// Probability that a page program takes its whole die down (every
    /// block of the die is retired and its valid pages relocated).
    pub die_fail_rate: f64,
    /// Wear amplification: the effective rate of a block-scoped fault is
    /// `rate * (1 + wear_sensitivity * erase_count)`, capped at 1.
    pub wear_sensitivity: f64,
    /// Upper bound of the read-retry ladder; the final retry always
    /// succeeds (no read ever surfaces an error).
    pub max_read_retries: u32,
    /// Number of retired blocks the device absorbs before it transitions to
    /// [`DeviceHealth::Degraded`] and rejects writes.
    pub spare_blocks: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            program_fail_rate: 0.0,
            erase_fail_rate: 0.0,
            read_transient_rate: 0.0,
            die_fail_rate: 0.0,
            wear_sensitivity: 0.0,
            max_read_retries: 4,
            spare_blocks: 8,
        }
    }
}

impl FaultConfig {
    /// An inert configuration with a seed already chosen (convenient start
    /// for builder-style field updates).
    pub fn with_seed(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    /// Whether every failure mode is disabled. An inert config never draws
    /// from the fault plan, so it cannot perturb a fault-free stream.
    pub fn is_inert(&self) -> bool {
        self.program_fail_rate <= 0.0
            && self.erase_fail_rate <= 0.0
            && self.read_transient_rate <= 0.0
            && self.die_fail_rate <= 0.0
    }

    /// The wear-amplified effective probability for a block-scoped fault.
    pub fn effective_rate(&self, base: f64, erase_count: u64) -> f64 {
        if base <= 0.0 {
            return 0.0;
        }
        (base * (1.0 + self.wear_sensitivity * erase_count as f64)).min(1.0)
    }

    /// Appends the configuration to `out` in the checkpoint layout.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.seed);
        put_f64(out, self.program_fail_rate);
        put_f64(out, self.erase_fail_rate);
        put_f64(out, self.read_transient_rate);
        put_f64(out, self.die_fail_rate);
        put_f64(out, self.wear_sensitivity);
        put_u32(out, self.max_read_retries);
        put_u64(out, self.spare_blocks);
    }

    /// Decodes a configuration written by [`FaultConfig::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::CorruptCheckpoint`] for non-finite or
    /// out-of-range rates.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self> {
        let seed = r.u64()?;
        let mut rates = [0.0f64; 4];
        for rate in &mut rates {
            let v = r.f64()?;
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(ConduitError::corrupt_checkpoint(
                    "fault rate outside [0, 1]",
                ));
            }
            *rate = v;
        }
        let wear_sensitivity = r.f64()?;
        if !wear_sensitivity.is_finite() || wear_sensitivity < 0.0 {
            return Err(ConduitError::corrupt_checkpoint(
                "negative or non-finite wear sensitivity",
            ));
        }
        Ok(FaultConfig {
            seed,
            program_fail_rate: rates[0],
            erase_fail_rate: rates[1],
            read_transient_rate: rates[2],
            die_fail_rate: rates[3],
            wear_sensitivity,
            max_read_retries: r.u32()?,
            spare_blocks: r.counter()?,
        })
    }
}

/// The replayable random stream behind fault injection.
///
/// Draw `i` is `splitmix64(seed + i * GAMMA)` — a pure function of the seed
/// and the cursor, so `(seed, draws)` is the plan's complete state and a
/// restored plan continues exactly where the exported one stopped.
///
/// # Examples
///
/// ```
/// use conduit_types::FaultPlan;
///
/// let mut a = FaultPlan::new(42);
/// let first = a.next_u64();
/// let mut b = FaultPlan::restore(a.seed(), a.draws());
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert_ne!(first, FaultPlan::new(43).next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    draws: u64,
}

/// The splitmix64 stream increment.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl FaultPlan {
    /// A fresh plan at draw zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, draws: 0 }
    }

    /// Rebuilds a plan from its checkpointed `(seed, draws)` state.
    pub fn restore(seed: u64, draws: u64) -> Self {
        FaultPlan { seed, draws }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many values have been drawn (the replay cursor).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Draws the next value of the splitmix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.draws = self.draws.wrapping_add(1);
        let mut z = self.seed.wrapping_add(self.draws.wrapping_mul(GAMMA));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a uniform value in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial at probability `rate`. A non-positive rate returns
    /// `false` **without consuming a draw**, which is what keeps an inert
    /// [`FaultConfig`] bit-identical to no fault injection at all.
    pub fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        self.next_f64() < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_matches_the_reference_splitmix64_stream() {
        // Reference: the stateful splitmix64 (state += GAMMA; mix state)
        // used by the workload generators. The cursor-based plan must
        // produce the same stream for the same seed.
        let seed = 0x0be5_11fe_u64;
        let mut state = seed;
        let mut plan = FaultPlan::new(seed);
        for _ in 0..64 {
            state = state.wrapping_add(GAMMA);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            assert_eq!(plan.next_u64(), z);
        }
    }

    #[test]
    fn restored_plan_continues_the_stream() {
        let mut a = FaultPlan::new(7);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = FaultPlan::restore(a.seed(), a.draws());
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_rate_rolls_consume_no_draws() {
        let mut plan = FaultPlan::new(1);
        assert!(!plan.roll(0.0));
        assert!(!plan.roll(-1.0));
        assert_eq!(plan.draws(), 0);
        assert!(plan.roll(1.0));
        assert_eq!(plan.draws(), 1);
    }

    #[test]
    fn next_f64_is_a_unit_uniform() {
        let mut plan = FaultPlan::new(99);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = plan.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn default_config_is_inert_and_roundtrips() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_inert());
        let mut buf = Vec::new();
        cfg.encode_into(&mut buf);
        let back = FaultConfig::decode_from(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn config_decode_rejects_out_of_range_rates() {
        let mut cfg = FaultConfig::with_seed(3);
        cfg.program_fail_rate = 0.25;
        let mut buf = Vec::new();
        cfg.encode_into(&mut buf);
        let back = FaultConfig::decode_from(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, cfg);
        assert!(!back.is_inert());

        // Rates live at offsets 8, 16, 24, 32; wear sensitivity at 40.
        for offset in [8, 16, 24, 32, 40] {
            let mut corrupt = buf.clone();
            corrupt[offset..offset + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
            assert!(
                FaultConfig::decode_from(&mut Reader::new(&corrupt)).is_err(),
                "NaN at {offset} must be rejected"
            );
            let mut big = buf.clone();
            big[offset..offset + 8].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
            if offset != 40 {
                assert!(
                    FaultConfig::decode_from(&mut Reader::new(&big)).is_err(),
                    "rate 2.0 at {offset} must be rejected"
                );
            }
        }
    }

    #[test]
    fn effective_rate_grows_with_wear_and_caps_at_one() {
        let mut cfg = FaultConfig::with_seed(0);
        cfg.wear_sensitivity = 0.1;
        assert_eq!(cfg.effective_rate(0.0, 100), 0.0);
        assert!((cfg.effective_rate(0.01, 0) - 0.01).abs() < 1e-12);
        assert!(cfg.effective_rate(0.01, 10) > cfg.effective_rate(0.01, 0));
        assert_eq!(cfg.effective_rate(0.5, 1_000_000), 1.0);
    }

    #[test]
    fn health_codes_roundtrip_and_reject_garbage() {
        for health in [DeviceHealth::Healthy, DeviceHealth::Degraded] {
            assert_eq!(DeviceHealth::decode(health.encode()).unwrap(), health);
        }
        assert!(DeviceHealth::decode(9).is_err());
        assert!(!DeviceHealth::default().is_degraded());
    }
}
