//! Vectorized instructions and vector programs.
//!
//! The output of Conduit's compile-time preprocessing stage (§4.3.1) is a
//! sequence of wide SIMD instructions whose vector width matches a NAND flash
//! page (4096 × 32-bit lanes = 16 KiB), each carrying lightweight metadata
//! (operation type, operand references, element size, vector length) that the
//! runtime offloader uses to make per-instruction offloading decisions.
//!
//! [`VectorInst`] is one such instruction; [`VectorProgram`] is the ordered
//! sequence produced for a whole application ("the binary" transferred to the
//! SSD in the paper).

use crate::addr::LogicalPageId;
use crate::op::{LatencyClass, OpType};
use std::collections::BTreeSet;
use std::fmt;

/// The default number of lanes produced by the auto-vectorizer
/// (`-force-vector-width=4096` in the paper).
pub const DEFAULT_LANES: u32 = 4096;

/// The default element width in bits (the paper quantizes to INT8 for LLM
/// workloads but uses 32-bit lanes as the vectorization unit; 32 is the
/// default, workloads override it).
pub const DEFAULT_ELEM_BITS: u32 = 32;

/// Identifier of a vector instruction within a [`VectorProgram`].
///
/// Instruction ids are dense indices assigned in program order, which lets
/// the runtime track dependences and completion with flat vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstId(u32);

impl InstId {
    /// Creates an instruction id from its program-order index.
    pub const fn new(index: u32) -> Self {
        InstId(index)
    }

    /// The program-order index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for InstId {
    fn from(v: u32) -> Self {
        InstId(v)
    }
}

/// A source operand of a vector instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A vector whose bytes live at a logical page in the SSD (the page is
    /// the *first* page of the vector; a full-width vector spans
    /// [`crate::addr::PAGES_PER_VECTOR`] consecutive pages).
    Page(LogicalPageId),
    /// The result produced by an earlier instruction in the same program.
    Result(InstId),
    /// A broadcast immediate value (no data movement needed).
    Immediate(i64),
}

impl Operand {
    /// Convenience constructor for a page operand.
    pub fn page(index: u64) -> Operand {
        Operand::Page(LogicalPageId::new(index))
    }

    /// Convenience constructor for a result operand.
    pub fn result(id: impl Into<InstId>) -> Operand {
        Operand::Result(id.into())
    }

    /// The logical page, if this operand is page-backed.
    pub fn as_page(self) -> Option<LogicalPageId> {
        match self {
            Operand::Page(p) => Some(p),
            _ => None,
        }
    }

    /// The producing instruction, if this operand is a prior result.
    pub fn as_result(self) -> Option<InstId> {
        match self {
            Operand::Result(id) => Some(id),
            _ => None,
        }
    }

    /// Whether this operand requires data (pages or a prior result), as
    /// opposed to an immediate.
    pub fn needs_data(self) -> bool {
        !matches!(self, Operand::Immediate(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Page(p) => write!(f, "{p}"),
            Operand::Result(id) => write!(f, "%{id}"),
            Operand::Immediate(v) => write!(f, "#{v}"),
        }
    }
}

/// Lightweight metadata embedded by the compile-time pass to guide runtime
/// offloading decisions (§4.3.1, third customization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct InstMetadata {
    /// The source loop this instruction was vectorized from, if any.
    pub loop_id: Option<u32>,
    /// The strip-mined iteration index within the loop, if any.
    pub strip_index: Option<u32>,
    /// Hint: expected number of future uses of this instruction's result
    /// (drives data-reuse behaviour; derived from the compile-time
    /// dependence graph).
    pub reuse_hint: u32,
}

/// One vectorized (SIMD) instruction with embedded offloading metadata.
///
/// # Examples
///
/// ```
/// use conduit_types::{OpType, Operand, VectorInst};
///
/// let x = VectorInst::binary(0, OpType::Xor, Operand::page(0), Operand::page(4));
/// assert_eq!(x.srcs.len(), 2);
/// assert_eq!(x.vector_bytes(), 16 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorInst {
    /// Program-order identifier.
    pub id: InstId,
    /// The operation performed.
    pub op: OpType,
    /// Number of SIMD lanes.
    pub lanes: u32,
    /// Width of each lane in bits (8, 16, 32 or 64).
    pub elem_bits: u32,
    /// Source operands (length matches `op.arity()` for well-formed
    /// instructions; validated by [`VectorProgram::validate`]).
    pub srcs: Vec<Operand>,
    /// If set, the result is committed to this logical page range (a store);
    /// otherwise the result stays in the producing resource until another
    /// instruction or the host needs it (lazy coherence).
    pub dst_page: Option<LogicalPageId>,
    /// Compile-time metadata.
    pub meta: InstMetadata,
}

impl VectorInst {
    /// Creates a full-width binary instruction with default lane count and
    /// element width.
    pub fn binary(id: u32, op: OpType, a: Operand, b: Operand) -> Self {
        VectorInst {
            id: InstId::new(id),
            op,
            lanes: DEFAULT_LANES,
            elem_bits: DEFAULT_ELEM_BITS,
            srcs: vec![a, b],
            dst_page: None,
            meta: InstMetadata::default(),
        }
    }

    /// Creates a full-width unary instruction with default lane count and
    /// element width.
    pub fn unary(id: u32, op: OpType, a: Operand) -> Self {
        VectorInst {
            id: InstId::new(id),
            op,
            lanes: DEFAULT_LANES,
            elem_bits: DEFAULT_ELEM_BITS,
            srcs: vec![a],
            dst_page: None,
            meta: InstMetadata::default(),
        }
    }

    /// Creates an instruction with explicit operands.
    pub fn with_srcs(id: u32, op: OpType, srcs: Vec<Operand>) -> Self {
        VectorInst {
            id: InstId::new(id),
            op,
            lanes: DEFAULT_LANES,
            elem_bits: DEFAULT_ELEM_BITS,
            srcs,
            dst_page: None,
            meta: InstMetadata::default(),
        }
    }

    /// Builder-style: sets the lane count.
    pub fn lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes;
        self
    }

    /// Builder-style: sets the element width in bits.
    pub fn elem_bits(mut self, bits: u32) -> Self {
        self.elem_bits = bits;
        self
    }

    /// Builder-style: sets the destination page (store).
    pub fn store_to(mut self, page: LogicalPageId) -> Self {
        self.dst_page = Some(page);
        self
    }

    /// Builder-style: sets the metadata.
    pub fn meta(mut self, meta: InstMetadata) -> Self {
        self.meta = meta;
        self
    }

    /// The total number of data bytes one full vector operand occupies.
    pub fn vector_bytes(&self) -> u64 {
        (self.lanes as u64) * (self.elem_bits as u64) / 8
    }

    /// The latency class of the operation (for workload characterization).
    pub fn latency_class(&self) -> LatencyClass {
        self.op.latency_class()
    }

    /// Iterator over the logical pages referenced by the source operands.
    pub fn src_pages(&self) -> impl Iterator<Item = LogicalPageId> + '_ {
        self.srcs.iter().filter_map(|s| s.as_page())
    }

    /// Iterator over the instruction results this instruction depends on.
    pub fn src_results(&self) -> impl Iterator<Item = InstId> + '_ {
        self.srcs.iter().filter_map(|s| s.as_result())
    }
}

impl fmt::Display for VectorInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "%{} = {} <{} x i{}>",
            self.id, self.op, self.lanes, self.elem_bits
        )?;
        for s in &self.srcs {
            write!(f, " {s}")?;
        }
        if let Some(p) = self.dst_page {
            write!(f, " -> {p}")?;
        }
        Ok(())
    }
}

/// Errors detected when validating a [`VectorProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An instruction's id does not match its position in the program.
    IdMismatch {
        /// Position in the instruction list.
        position: usize,
        /// The id stored in the instruction.
        found: InstId,
    },
    /// An instruction references the result of an instruction that does not
    /// precede it.
    ForwardReference {
        /// The referencing instruction.
        inst: InstId,
        /// The referenced (not-yet-defined) instruction.
        operand: InstId,
    },
    /// An instruction has the wrong number of source operands for its op.
    ArityMismatch {
        /// The offending instruction.
        inst: InstId,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        found: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::IdMismatch { position, found } => {
                write!(f, "instruction at position {position} has id {found}")
            }
            ProgramError::ForwardReference { inst, operand } => {
                write!(
                    f,
                    "instruction {inst} references later instruction {operand}"
                )
            }
            ProgramError::ArityMismatch {
                inst,
                expected,
                found,
            } => write!(
                f,
                "instruction {inst} has {found} operands, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// An ordered sequence of vector instructions — the "binary" the compile-time
/// stage transfers to the SSD.
///
/// # Examples
///
/// ```
/// use conduit_types::{OpType, Operand, VectorProgram};
///
/// let mut prog = VectorProgram::new("demo");
/// let a = prog.push_binary(OpType::Add, Operand::page(0), Operand::page(4));
/// let _ = prog.push_binary(OpType::Mul, Operand::result(a), Operand::page(8));
/// assert_eq!(prog.len(), 2);
/// assert!(prog.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VectorProgram {
    name: String,
    insts: Vec<VectorInst>,
    /// Fraction of the original application's dynamic work that was
    /// vectorized (Table 3 "Vectorizable Code %"). Set by the vectorizer.
    pub vectorized_fraction: f64,
}

impl VectorProgram {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        VectorProgram {
            name: name.into(),
            insts: Vec::new(),
            vectorized_fraction: 1.0,
        }
    }

    /// The program name (workload identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instructions, in program order.
    pub fn insts(&self) -> &[VectorInst] {
        &self.insts
    }

    /// Iterator over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, VectorInst> {
        self.insts.iter()
    }

    /// Mutable access to the most recently pushed instruction (used by the
    /// vectorizer to attach a store destination to an emitted producer).
    pub fn last_mut(&mut self) -> Option<&mut VectorInst> {
        self.insts.last_mut()
    }

    /// Appends an already-built instruction, reassigning its id to keep ids
    /// dense and in program order. Returns the assigned id.
    pub fn push(&mut self, mut inst: VectorInst) -> InstId {
        let id = InstId::new(self.insts.len() as u32);
        inst.id = id;
        self.insts.push(inst);
        id
    }

    /// Appends a full-width binary instruction. Returns the assigned id.
    pub fn push_binary(&mut self, op: OpType, a: Operand, b: Operand) -> InstId {
        let id = self.insts.len() as u32;
        self.push(VectorInst::binary(id, op, a, b))
    }

    /// Appends a full-width unary instruction. Returns the assigned id.
    pub fn push_unary(&mut self, op: OpType, a: Operand) -> InstId {
        let id = self.insts.len() as u32;
        self.push(VectorInst::unary(id, op, a))
    }

    /// The set of distinct logical pages referenced by the program (sources
    /// and destinations), i.e. its storage footprint in pages.
    pub fn footprint_pages(&self) -> BTreeSet<LogicalPageId> {
        let mut pages = BTreeSet::new();
        for inst in &self.insts {
            pages.extend(inst.src_pages());
            if let Some(d) = inst.dst_page {
                pages.insert(d);
            }
        }
        pages
    }

    /// Total bytes of distinct logical pages touched by the program.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_pages().len() as u64 * crate::addr::PAGE_BYTES
    }

    /// Checks structural well-formedness: dense ids, no forward references,
    /// correct operand arity.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> std::result::Result<(), ProgramError> {
        for (pos, inst) in self.insts.iter().enumerate() {
            if inst.id.index() != pos {
                return Err(ProgramError::IdMismatch {
                    position: pos,
                    found: inst.id,
                });
            }
            let expected = inst.op.arity();
            if inst.srcs.len() != expected {
                return Err(ProgramError::ArityMismatch {
                    inst: inst.id,
                    expected,
                    found: inst.srcs.len(),
                });
            }
            for dep in inst.src_results() {
                if dep.index() >= pos {
                    return Err(ProgramError::ForwardReference {
                        inst: inst.id,
                        operand: dep,
                    });
                }
            }
        }
        Ok(())
    }

    /// Counts instructions per latency class: `(low, medium, high)`.
    pub fn latency_class_mix(&self) -> (usize, usize, usize) {
        let mut low = 0;
        let mut med = 0;
        let mut high = 0;
        for inst in &self.insts {
            match inst.latency_class() {
                LatencyClass::Low => low += 1,
                LatencyClass::Medium => med += 1,
                LatencyClass::High => high += 1,
            }
        }
        (low, med, high)
    }

    /// Average number of instructions that consume each produced value or
    /// page before it is overwritten — the "Avg. Reuse" column of Table 3.
    pub fn average_reuse(&self) -> f64 {
        use std::collections::HashMap;
        let mut uses: HashMap<Operand, u64> = HashMap::new();
        for inst in &self.insts {
            for src in &inst.srcs {
                if src.needs_data() {
                    *uses.entry(*src).or_insert(0) += 1;
                }
            }
        }
        if uses.is_empty() {
            return 0.0;
        }
        let total: u64 = uses.values().sum();
        total as f64 / uses.len() as f64
    }
}

impl<'a> IntoIterator for &'a VectorProgram {
    type Item = &'a VectorInst;
    type IntoIter = std::slice::Iter<'a, VectorInst>;
    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl Extend<VectorInst> for VectorProgram {
    fn extend<T: IntoIterator<Item = VectorInst>>(&mut self, iter: T) {
        for inst in iter {
            self.push(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::page(3).as_page(), Some(LogicalPageId::new(3)));
        assert_eq!(Operand::page(3).as_result(), None);
        assert_eq!(Operand::result(2u32).as_result(), Some(InstId::new(2)));
        assert!(!Operand::Immediate(7).needs_data());
        assert!(Operand::page(0).needs_data());
    }

    #[test]
    fn inst_builders_and_accessors() {
        let inst = VectorInst::binary(5, OpType::Add, Operand::page(1), Operand::result(3u32))
            .lanes(2048)
            .elem_bits(8)
            .store_to(LogicalPageId::new(9));
        assert_eq!(inst.vector_bytes(), 2048);
        assert_eq!(inst.src_pages().count(), 1);
        assert_eq!(inst.src_results().count(), 1);
        assert_eq!(inst.dst_page, Some(LogicalPageId::new(9)));
        assert_eq!(inst.latency_class(), LatencyClass::Medium);
    }

    #[test]
    fn program_push_assigns_dense_ids() {
        let mut prog = VectorProgram::new("p");
        let a = prog.push_binary(OpType::And, Operand::page(0), Operand::page(1));
        let b = prog.push_unary(OpType::Not, Operand::result(a));
        assert_eq!(a, InstId::new(0));
        assert_eq!(b, InstId::new(1));
        assert!(prog.validate().is_ok());
        assert_eq!(prog.name(), "p");
        assert!(!prog.is_empty());
    }

    #[test]
    fn validate_detects_forward_reference() {
        let mut prog = VectorProgram::new("bad");
        prog.push(VectorInst::binary(
            0,
            OpType::Add,
            Operand::result(5u32),
            Operand::page(0),
        ));
        assert!(matches!(
            prog.validate(),
            Err(ProgramError::ForwardReference { .. })
        ));
    }

    #[test]
    fn validate_detects_arity_mismatch() {
        let mut prog = VectorProgram::new("bad");
        prog.push(VectorInst::with_srcs(
            0,
            OpType::Add,
            vec![Operand::page(0)],
        ));
        assert!(matches!(
            prog.validate(),
            Err(ProgramError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn footprint_counts_distinct_pages() {
        let mut prog = VectorProgram::new("fp");
        let a = prog.push_binary(OpType::Add, Operand::page(0), Operand::page(1));
        prog.push(
            VectorInst::binary(1, OpType::Mul, Operand::result(a), Operand::page(1))
                .store_to(LogicalPageId::new(2)),
        );
        assert_eq!(prog.footprint_pages().len(), 3);
        assert_eq!(prog.footprint_bytes(), 3 * crate::addr::PAGE_BYTES);
    }

    #[test]
    fn latency_mix_and_reuse() {
        let mut prog = VectorProgram::new("mix");
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(1));
        prog.push_binary(OpType::Add, Operand::result(a), Operand::page(0));
        prog.push_binary(OpType::Mul, Operand::result(a), Operand::page(0));
        let (low, med, high) = prog.latency_class_mix();
        assert_eq!((low, med, high), (1, 1, 1));
        // operands: page0 used 3x, page1 used 1x, result(a) used 2x => avg 2.0
        assert!((prog.average_reuse() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders_ir_like_text() {
        let inst = VectorInst::binary(0, OpType::Xor, Operand::page(0), Operand::Immediate(3));
        let text = inst.to_string();
        assert!(text.contains("xor"));
        assert!(text.contains("<4096 x i32>"));
        assert!(text.contains("#3"));
    }
}
