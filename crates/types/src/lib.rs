//! # conduit-types
//!
//! Shared vocabulary for the Conduit near-data-processing (NDP) framework:
//! simulation time and energy units, vector-operation and instruction types,
//! logical/physical storage addresses, compute-resource identifiers, error
//! types, and the full SSD/host configuration (Table 2 of the paper).
//!
//! Every other crate in the workspace builds on these definitions, so this
//! crate is dependency-free and purely data-oriented.
//!
//! ## Example
//!
//! ```
//! use conduit_types::{OpType, Resource, SsdConfig, VectorInst, Operand, LogicalPageId};
//!
//! let cfg = SsdConfig::default();
//! assert_eq!(cfg.flash.channels, 8);
//!
//! let inst = VectorInst::binary(0, OpType::Xor, Operand::page(3), Operand::page(4));
//! assert!(inst.op.is_bitwise());
//! assert!(Resource::Ifp.supports(inst.op));
//! # let _ = LogicalPageId::new(3);
//! ```

pub mod addr;
pub mod bytes;
pub mod config;
pub mod energy;
pub mod error;
pub mod fault;
pub mod inst;
pub mod op;
pub mod resource;
pub mod serialize;
pub mod time;

pub use addr::{LogicalPageId, PhysicalPageAddr, PAGE_BYTES};
pub use config::{
    CtrlConfig, DramConfig, FlashConfig, HostConfig, HostCpuConfig, HostGpuConfig, HostLinkConfig,
    OffloaderOverheadConfig, SsdConfig,
};
pub use energy::{Energy, EnergySource};
pub use error::{ConduitError, Result};
pub use fault::{DeviceHealth, FaultConfig, FaultPlan};
pub use inst::{InstId, InstMetadata, Operand, VectorInst, VectorProgram};
pub use op::{LatencyClass, OpType};
pub use resource::{DataLocation, EstimateKey, ExecutionSite, Resource};
pub use serialize::{PROGRAM_FORMAT_VERSION, PROGRAM_MAGIC};
pub use time::{Duration, SimTime};
