//! Vector operation types and their latency classes.
//!
//! Conduit's compile-time pass embeds the *operation type* of every
//! vectorized instruction as metadata (§4.3.1); at runtime the operation type
//! is the first of the six cost-function features (Table 1) because the three
//! SSD compute resources support very different operation sets:
//!
//! * **ISP** (controller cores) supports the full general-purpose ISA
//!   (~300 instructions), so every [`OpType`] is supported.
//! * **PuD-SSD** (SSD DRAM) supports the 16-operation bulk-bitwise /
//!   arithmetic / predication / relational set of SIMDRAM, MIMDRAM and
//!   Proteus.
//! * **IFP** (flash chips) supports nine operations: six bitwise operations
//!   (Flash-Cosmos multi-wordline sensing plus latch-based XOR/NOT) and three
//!   arithmetic operations (Ares-Flash shift-and-add).

use std::fmt;

/// Coarse latency classification used to characterize workloads (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LatencyClass {
    /// Bitwise and logical operations (e.g. AND, OR, XOR, NOT, shifts).
    Low,
    /// Additive arithmetic, comparisons, predication, copies.
    Medium,
    /// Multiplicative arithmetic and reductions.
    High,
}

impl fmt::Display for LatencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LatencyClass::Low => "low",
            LatencyClass::Medium => "medium",
            LatencyClass::High => "high",
        };
        f.write_str(s)
    }
}

/// The operation performed by a vectorized (SIMD) instruction.
///
/// The set mirrors what the paper's compile-time pass emits after loop
/// auto-vectorization: bulk bitwise operations, element-wise arithmetic,
/// predication/relational operations, data movement, reductions, and a
/// catch-all [`OpType::Scalar`] for non-vectorizable (control-intensive)
/// regions that strip-mining leaves behind.
///
/// # Examples
///
/// ```
/// use conduit_types::{LatencyClass, OpType};
///
/// assert!(OpType::And.is_bitwise());
/// assert_eq!(OpType::Mul.latency_class(), LatencyClass::High);
/// assert_eq!(OpType::Add.latency_class(), LatencyClass::Medium);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpType {
    // --- bulk bitwise (six operations, the IFP bitwise set) ---
    /// Bitwise AND of two (or more) operands.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT (single operand).
    Not,
    /// Bitwise NAND.
    Nand,
    /// Bitwise NOR.
    Nor,
    // --- shifts ---
    /// Logical shift left by an immediate.
    Shl,
    /// Logical shift right by an immediate.
    Shr,
    // --- arithmetic ---
    /// Element-wise integer addition.
    Add,
    /// Element-wise integer subtraction.
    Sub,
    /// Element-wise integer multiplication.
    Mul,
    /// Element-wise integer division (ISP only).
    Div,
    /// Element-wise min.
    Min,
    /// Element-wise max.
    Max,
    // --- predication / relational ---
    /// Element-wise equality comparison producing a predicate mask.
    CmpEq,
    /// Element-wise less-than comparison producing a predicate mask.
    CmpLt,
    /// Element-wise greater-than comparison producing a predicate mask.
    CmpGt,
    /// Predicated select: `dst[i] = mask[i] ? a[i] : b[i]`.
    Select,
    // --- data movement / layout ---
    /// Bulk copy of a vector (RowClone-style in DRAM, page copy in flash).
    Copy,
    /// Lane shuffle / permutation (gather within a vector).
    Shuffle,
    /// Table lookup (indexed gather from a small table, e.g. AES S-box).
    Lookup,
    // --- reductions ---
    /// Horizontal sum of all lanes into a scalar.
    ReduceAdd,
    /// Horizontal maximum of all lanes into a scalar.
    ReduceMax,
    // --- non-vectorized remainder ---
    /// A scalar / control-intensive region that could not be vectorized and
    /// executes on a general-purpose core (host or ISP).
    Scalar,
}

impl OpType {
    /// All operation types, useful for exhaustive tables and property tests.
    pub const ALL: [OpType; 24] = [
        OpType::And,
        OpType::Or,
        OpType::Xor,
        OpType::Not,
        OpType::Nand,
        OpType::Nor,
        OpType::Shl,
        OpType::Shr,
        OpType::Add,
        OpType::Sub,
        OpType::Mul,
        OpType::Div,
        OpType::Min,
        OpType::Max,
        OpType::CmpEq,
        OpType::CmpLt,
        OpType::CmpGt,
        OpType::Select,
        OpType::Copy,
        OpType::Shuffle,
        OpType::Lookup,
        OpType::ReduceAdd,
        OpType::ReduceMax,
        OpType::Scalar,
    ];

    /// Number of distinct operation types (the size of a per-op array).
    pub const COUNT: usize = Self::ALL.len();

    /// The dense index of this operation in `[0, COUNT)` — the array-table
    /// analogue of [`OpType::encoding`].
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether this is one of the six bulk bitwise operations.
    pub fn is_bitwise(self) -> bool {
        matches!(
            self,
            OpType::And | OpType::Or | OpType::Xor | OpType::Not | OpType::Nand | OpType::Nor
        )
    }

    /// Whether this is an element-wise arithmetic operation.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            OpType::Add | OpType::Sub | OpType::Mul | OpType::Div | OpType::Min | OpType::Max
        )
    }

    /// Whether this is a predication / relational operation.
    pub fn is_predication(self) -> bool {
        matches!(
            self,
            OpType::CmpEq | OpType::CmpLt | OpType::CmpGt | OpType::Select
        )
    }

    /// Whether this is a horizontal reduction.
    pub fn is_reduction(self) -> bool {
        matches!(self, OpType::ReduceAdd | OpType::ReduceMax)
    }

    /// Whether this is a data-movement / layout operation.
    pub fn is_data_movement(self) -> bool {
        matches!(self, OpType::Copy | OpType::Shuffle | OpType::Lookup)
    }

    /// Whether this is a non-vectorized scalar/control region.
    pub fn is_scalar(self) -> bool {
        matches!(self, OpType::Scalar)
    }

    /// The number of source operands this operation consumes.
    pub fn arity(self) -> usize {
        match self {
            OpType::Not | OpType::Copy | OpType::Shuffle | OpType::Shl | OpType::Shr => 1,
            OpType::ReduceAdd | OpType::ReduceMax => 1,
            OpType::Select => 3,
            OpType::Scalar => 1,
            OpType::Lookup => 2,
            _ => 2,
        }
    }

    /// The latency class used for workload characterization (Table 3).
    pub fn latency_class(self) -> LatencyClass {
        match self {
            OpType::And
            | OpType::Or
            | OpType::Xor
            | OpType::Not
            | OpType::Nand
            | OpType::Nor
            | OpType::Shl
            | OpType::Shr => LatencyClass::Low,
            OpType::Add
            | OpType::Sub
            | OpType::Min
            | OpType::Max
            | OpType::CmpEq
            | OpType::CmpLt
            | OpType::CmpGt
            | OpType::Select
            | OpType::Copy
            | OpType::Shuffle
            | OpType::Lookup
            | OpType::Scalar => LatencyClass::Medium,
            OpType::Mul | OpType::Div | OpType::ReduceAdd | OpType::ReduceMax => LatencyClass::High,
        }
    }

    /// A compact stable numeric encoding of the operation type as stored in
    /// the instruction-transformation translation table (two bytes per entry,
    /// §4.5 of the paper).
    pub fn encoding(self) -> u16 {
        OpType::ALL
            .iter()
            .position(|&o| o == self)
            .expect("every op is in ALL") as u16
            + 1
    }

    /// The inverse of [`OpType::encoding`]. Returns `None` for codes that do
    /// not correspond to any operation.
    pub fn from_encoding(code: u16) -> Option<OpType> {
        if code == 0 {
            return None;
        }
        OpType::ALL.get(code as usize - 1).copied()
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpType::And => "and",
            OpType::Or => "or",
            OpType::Xor => "xor",
            OpType::Not => "not",
            OpType::Nand => "nand",
            OpType::Nor => "nor",
            OpType::Shl => "shl",
            OpType::Shr => "shr",
            OpType::Add => "add",
            OpType::Sub => "sub",
            OpType::Mul => "mul",
            OpType::Div => "div",
            OpType::Min => "min",
            OpType::Max => "max",
            OpType::CmpEq => "cmpeq",
            OpType::CmpLt => "cmplt",
            OpType::CmpGt => "cmpgt",
            OpType::Select => "select",
            OpType::Copy => "copy",
            OpType::Shuffle => "shuffle",
            OpType::Lookup => "lookup",
            OpType::ReduceAdd => "reduce_add",
            OpType::ReduceMax => "reduce_max",
            OpType::Scalar => "scalar",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_is_exhaustive_and_unique() {
        let set: HashSet<_> = OpType::ALL.iter().collect();
        assert_eq!(set.len(), OpType::ALL.len());
    }

    #[test]
    fn index_matches_position_in_all() {
        for (i, op) in OpType::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        assert_eq!(OpType::COUNT, 24);
    }

    #[test]
    fn encoding_roundtrips() {
        for op in OpType::ALL {
            assert_eq!(OpType::from_encoding(op.encoding()), Some(op));
        }
        assert_eq!(OpType::from_encoding(0), None);
        assert_eq!(OpType::from_encoding(10_000), None);
    }

    #[test]
    fn classification_partitions() {
        for op in OpType::ALL {
            let kinds = [
                op.is_bitwise(),
                op.is_arithmetic(),
                op.is_predication(),
                op.is_reduction(),
                op.is_data_movement(),
                op.is_scalar(),
                matches!(op, OpType::Shl | OpType::Shr),
            ];
            let n = kinds.iter().filter(|&&b| b).count();
            assert_eq!(n, 1, "{op} should belong to exactly one class");
        }
    }

    #[test]
    fn exactly_six_bitwise_ops() {
        assert_eq!(OpType::ALL.iter().filter(|o| o.is_bitwise()).count(), 6);
    }

    #[test]
    fn latency_classes_match_paper_table3_notes() {
        assert_eq!(OpType::Xor.latency_class(), LatencyClass::Low);
        assert_eq!(OpType::Add.latency_class(), LatencyClass::Medium);
        assert_eq!(OpType::CmpLt.latency_class(), LatencyClass::Medium);
        assert_eq!(OpType::Mul.latency_class(), LatencyClass::High);
    }

    #[test]
    fn arity_is_consistent_with_kind() {
        assert_eq!(OpType::Not.arity(), 1);
        assert_eq!(OpType::Add.arity(), 2);
        assert_eq!(OpType::Select.arity(), 3);
    }

    #[test]
    fn display_is_lowercase_and_nonempty() {
        for op in OpType::ALL {
            let s = op.to_string();
            assert!(!s.is_empty());
            assert_eq!(s, s.to_lowercase());
        }
    }
}
