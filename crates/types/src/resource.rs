//! Compute resources and data locations.
//!
//! The SSD contains three heterogeneous NDP compute resources (§2.2):
//! general-purpose embedded controller cores (**ISP**), the SSD-internal
//! DRAM (**PuD-SSD**) and the NAND flash chips (**IFP**). The host CPU and
//! GPU are modelled as additional *execution sites* used by the
//! outside-storage-processing (OSP) baselines.

use crate::op::OpType;
use std::fmt;

/// One of the three SSD-internal compute resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// In-storage processing on the SSD controller's embedded cores.
    Isp,
    /// Processing-using-DRAM inside the SSD's LPDDR4 DRAM.
    PudSsd,
    /// In-flash processing inside the NAND flash chips.
    Ifp,
}

impl Resource {
    /// All SSD compute resources, in cost-function evaluation order.
    pub const ALL: [Resource; 3] = [Resource::Isp, Resource::PudSsd, Resource::Ifp];

    /// Whether this resource can execute the given operation at all.
    ///
    /// * ISP executes everything (general-purpose cores).
    /// * PuD-SSD executes the SIMDRAM/MIMDRAM/Proteus operation set
    ///   (bulk bitwise, shifts, add/sub/mul, min/max, predication,
    ///   relational, copy) but not division, gathers/lookups, reductions or
    ///   scalar control code.
    /// * IFP executes the six bulk bitwise operations (Flash-Cosmos) and
    ///   three arithmetic operations — add, sub, mul — via Ares-Flash
    ///   shift-and-add, plus bulk copy.
    ///
    /// ```
    /// use conduit_types::{OpType, Resource};
    /// assert!(Resource::Isp.supports(OpType::Div));
    /// assert!(!Resource::Ifp.supports(OpType::Div));
    /// assert!(Resource::Ifp.supports(OpType::And));
    /// assert!(Resource::PudSsd.supports(OpType::CmpLt));
    /// ```
    pub fn supports(self, op: OpType) -> bool {
        match self {
            Resource::Isp => true,
            Resource::PudSsd => {
                // The 16-operation SIMDRAM/MIMDRAM/Proteus set: 6 bitwise,
                // 2 shifts, 5 arithmetic (add/sub/mul/min/max) and 3
                // relational, plus RowClone bulk copy. Predicated select is
                // left to the general-purpose cores.
                op.is_bitwise()
                    || matches!(
                        op,
                        OpType::Shl
                            | OpType::Shr
                            | OpType::Add
                            | OpType::Sub
                            | OpType::Mul
                            | OpType::Min
                            | OpType::Max
                            | OpType::CmpEq
                            | OpType::CmpLt
                            | OpType::CmpGt
                            | OpType::Copy
                    )
            }
            Resource::Ifp => {
                op.is_bitwise()
                    || matches!(op, OpType::Add | OpType::Sub | OpType::Mul | OpType::Copy)
            }
        }
    }

    /// The number of distinct vector operations this resource supports,
    /// mirroring the counts quoted in §4.3.2 (ISP ≈ 300 ISA instructions,
    /// PuD-SSD 16 operations, IFP 9 operations). For ISP this returns the
    /// size of the vector-op set it can execute (all of them).
    pub fn supported_op_count(self) -> usize {
        OpType::ALL.iter().filter(|&&op| self.supports(op)).count()
    }

    /// The data location this resource computes from: the controller cores
    /// and the PuD substrate both operate on data staged in the SSD DRAM
    /// (the controller's working memory), while in-flash processing operates
    /// on data in place in the flash array.
    pub fn home_location(self) -> DataLocation {
        match self {
            Resource::Isp => DataLocation::Dram,
            Resource::PudSsd => DataLocation::Dram,
            Resource::Ifp => DataLocation::Flash,
        }
    }

    /// Short machine-readable name, used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Isp => "ISP",
            Resource::PudSsd => "PuD-SSD",
            Resource::Ifp => "IFP",
        }
    }

    /// The dense index of this resource in `[0, Resource::COUNT)`.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Number of SSD compute resources.
    pub const COUNT: usize = Self::ALL.len();
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Dense key into a per-(resource, operation) lookup table.
///
/// The simulator precomputes the un-contended compute latency and energy of
/// every (resource, operation) pair once from the static `SsdConfig`, so the
/// per-instruction cost-feature collection is a flat array load instead of a
/// model evaluation. The key's [`EstimateKey::dense`] index is stable across
/// runs (declaration order of [`Resource::ALL`] × [`OpType::ALL`]).
///
/// # Examples
///
/// ```
/// use conduit_types::{EstimateKey, OpType, Resource};
///
/// let k = EstimateKey::new(Resource::Ifp, OpType::Xor);
/// assert!(k.dense() < EstimateKey::TABLE_LEN);
/// assert_eq!(EstimateKey::from_dense(k.dense()), k);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EstimateKey {
    /// The candidate compute resource.
    pub resource: Resource,
    /// The vector operation.
    pub op: OpType,
}

impl EstimateKey {
    /// Total number of (resource, operation) pairs — the length of a dense
    /// estimate table.
    pub const TABLE_LEN: usize = Resource::COUNT * OpType::COUNT;

    /// Creates a key.
    pub const fn new(resource: Resource, op: OpType) -> Self {
        EstimateKey { resource, op }
    }

    /// The dense table index of this key.
    pub const fn dense(self) -> usize {
        self.resource.index() * OpType::COUNT + self.op.index()
    }

    /// Inverse of [`EstimateKey::dense`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= TABLE_LEN`.
    pub fn from_dense(index: usize) -> Self {
        assert!(index < Self::TABLE_LEN, "estimate index out of range");
        EstimateKey {
            resource: Resource::ALL[index / OpType::COUNT],
            op: OpType::ALL[index % OpType::COUNT],
        }
    }
}

/// Any place an instruction can execute: on the host (OSP baselines) or on
/// one of the SSD compute resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExecutionSite {
    /// The host CPU (outside-storage processing).
    HostCpu,
    /// The host GPU (outside-storage processing).
    HostGpu,
    /// One of the SSD compute resources.
    Ssd(Resource),
}

impl ExecutionSite {
    /// All execution sites.
    pub const ALL: [ExecutionSite; 5] = [
        ExecutionSite::HostCpu,
        ExecutionSite::HostGpu,
        ExecutionSite::Ssd(Resource::Isp),
        ExecutionSite::Ssd(Resource::PudSsd),
        ExecutionSite::Ssd(Resource::Ifp),
    ];

    /// The SSD resource, if this site is inside the SSD.
    pub fn resource(self) -> Option<Resource> {
        match self {
            ExecutionSite::Ssd(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this site is on the host side of the PCIe link.
    pub fn is_host(self) -> bool {
        matches!(self, ExecutionSite::HostCpu | ExecutionSite::HostGpu)
    }

    /// Short machine-readable name, used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionSite::HostCpu => "CPU",
            ExecutionSite::HostGpu => "GPU",
            ExecutionSite::Ssd(r) => r.name(),
        }
    }
}

impl fmt::Display for ExecutionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<Resource> for ExecutionSite {
    fn from(r: Resource) -> Self {
        ExecutionSite::Ssd(r)
    }
}

/// Where the bytes of a logical page currently live.
///
/// Used by the lazy coherence protocol (§4.4): the L2P table records the
/// *owner* of the latest version of each page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataLocation {
    /// In a NAND flash page (the durable home of all data).
    Flash,
    /// In the SSD-internal DRAM.
    Dram,
    /// In the SSD controller's SRAM / registers.
    CtrlSram,
    /// In host main memory (only for OSP baselines).
    Host,
}

impl DataLocation {
    /// All data locations.
    pub const ALL: [DataLocation; 4] = [
        DataLocation::Flash,
        DataLocation::Dram,
        DataLocation::CtrlSram,
        DataLocation::Host,
    ];

    /// The 4-bit encoding used in the L2P coherence metadata (§4.5:
    /// "we encode operand location using four bits").
    pub fn encoding(self) -> u8 {
        match self {
            DataLocation::Flash => 0,
            DataLocation::Dram => 1,
            DataLocation::CtrlSram => 2,
            DataLocation::Host => 3,
        }
    }

    /// Inverse of [`DataLocation::encoding`].
    pub fn from_encoding(code: u8) -> Option<DataLocation> {
        match code {
            0 => Some(DataLocation::Flash),
            1 => Some(DataLocation::Dram),
            2 => Some(DataLocation::CtrlSram),
            3 => Some(DataLocation::Host),
            _ => None,
        }
    }

    /// Whether data at this location is inside the SSD.
    pub fn is_in_ssd(self) -> bool {
        !matches!(self, DataLocation::Host)
    }
}

impl fmt::Display for DataLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataLocation::Flash => "flash",
            DataLocation::Dram => "dram",
            DataLocation::CtrlSram => "ctrl-sram",
            DataLocation::Host => "host",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isp_supports_everything() {
        for op in OpType::ALL {
            assert!(Resource::Isp.supports(op));
        }
    }

    #[test]
    fn ifp_supports_nine_compute_ops_plus_copy() {
        // 6 bitwise + 3 arithmetic (add, sub, mul) + copy
        let n = OpType::ALL
            .iter()
            .filter(|&&op| Resource::Ifp.supports(op) && op != OpType::Copy)
            .count();
        assert_eq!(n, 9);
        assert!(Resource::Ifp.supports(OpType::Copy));
        assert!(!Resource::Ifp.supports(OpType::CmpEq));
        assert!(!Resource::Ifp.supports(OpType::Div));
        assert!(!Resource::Ifp.supports(OpType::Scalar));
    }

    #[test]
    fn pud_supports_sixteen_compute_ops_plus_copy() {
        let n = OpType::ALL
            .iter()
            .filter(|&&op| Resource::PudSsd.supports(op) && op != OpType::Copy)
            .count();
        assert_eq!(n, 16);
        assert!(!Resource::PudSsd.supports(OpType::Div));
        assert!(!Resource::PudSsd.supports(OpType::ReduceAdd));
        assert!(!Resource::PudSsd.supports(OpType::Scalar));
    }

    #[test]
    fn supported_counts_ordered_by_generality() {
        assert!(
            Resource::Isp.supported_op_count() > Resource::PudSsd.supported_op_count()
                && Resource::PudSsd.supported_op_count() > Resource::Ifp.supported_op_count()
        );
    }

    #[test]
    fn home_locations() {
        assert_eq!(Resource::Ifp.home_location(), DataLocation::Flash);
        assert_eq!(Resource::PudSsd.home_location(), DataLocation::Dram);
        assert_eq!(Resource::Isp.home_location(), DataLocation::Dram);
    }

    #[test]
    fn execution_site_helpers() {
        assert!(ExecutionSite::HostCpu.is_host());
        assert!(!ExecutionSite::Ssd(Resource::Ifp).is_host());
        assert_eq!(
            ExecutionSite::Ssd(Resource::Isp).resource(),
            Some(Resource::Isp)
        );
        assert_eq!(ExecutionSite::HostGpu.resource(), None);
        assert_eq!(ExecutionSite::from(Resource::PudSsd).name(), "PuD-SSD");
    }

    #[test]
    fn estimate_keys_are_dense_and_unique() {
        let mut seen = [false; EstimateKey::TABLE_LEN];
        for r in Resource::ALL {
            for op in OpType::ALL {
                let k = EstimateKey::new(r, op);
                assert!(!seen[k.dense()], "duplicate dense index for {r}/{op}");
                seen[k.dense()] = true;
                assert_eq!(EstimateKey::from_dense(k.dense()), k);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn data_location_encoding_roundtrips() {
        for loc in DataLocation::ALL {
            assert_eq!(DataLocation::from_encoding(loc.encoding()), Some(loc));
            assert!(loc.encoding() < 16, "must fit in four bits");
        }
        assert_eq!(DataLocation::from_encoding(15), None);
    }
}
