//! Compact binary serialization of [`VectorProgram`]s.
//!
//! The vectorizer is by far the most expensive part of preparing a workload,
//! and a server wants to pay it **once**: a vectorized program serialized
//! with [`VectorProgram::to_bytes`] can be persisted, shipped to another
//! process, and revived with [`VectorProgram::from_bytes`] — the decoded
//! program is structurally identical (same instructions, operands, metadata
//! and vectorized fraction), so replaying it under any policy reproduces the
//! exact same simulation results.
//!
//! The format is a small, versioned, little-endian byte stream (no external
//! serialization crates are available offline):
//!
//! ```text
//! "CVP1"  magic                       4 bytes
//! u16     format version (currently 1)
//! u32     name length, then UTF-8 name bytes
//! u64     vectorized_fraction as f64 bits
//! u32     instruction count
//! per instruction:
//!   u16   op encoding (OpType::encoding, never 0)
//!   u32   lanes
//!   u32   elem_bits
//!   u8    source-operand count
//!   per operand: u8 tag (0 page / 1 result / 2 immediate) + payload
//!                (u64 page | u32 inst | i64 immediate)
//!   u8    dst flag (0/1) + u64 page when set
//!   u8    metadata flags (bit0 loop_id, bit1 strip_index)
//!         + u32 loop_id? + u32 strip_index? + u32 reuse_hint
//! ```
//!
//! Instruction ids are *not* stored: they are dense program-order indices by
//! construction ([`VectorProgram::push`] reassigns them), so the decoder
//! regenerates them for free. Decoding validates the magic, version, tags,
//! op encodings and UTF-8, rejects trailing bytes, and finishes with
//! [`VectorProgram::validate`], so a corrupt or truncated blob can never
//! produce a structurally invalid program.
//!
//! # Examples
//!
//! ```
//! use conduit_types::{OpType, Operand, VectorProgram};
//!
//! let mut prog = VectorProgram::new("roundtrip");
//! let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
//! prog.push_binary(OpType::Add, Operand::result(a), Operand::Immediate(7));
//!
//! let bytes = prog.to_bytes();
//! let back = VectorProgram::from_bytes(&bytes)?;
//! assert_eq!(back, prog);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

use crate::addr::LogicalPageId;
use crate::bytes::{put_u16, put_u32, put_u64, Reader};
use crate::error::{ConduitError, Result};
use crate::inst::{InstMetadata, Operand, VectorInst, VectorProgram};
use crate::op::OpType;

/// Magic bytes identifying a serialized [`VectorProgram`].
pub const PROGRAM_MAGIC: [u8; 4] = *b"CVP1";

/// Current serialization format version.
pub const PROGRAM_FORMAT_VERSION: u16 = 1;

const TAG_PAGE: u8 = 0;
const TAG_RESULT: u8 = 1;
const TAG_IMMEDIATE: u8 = 2;

fn corrupt(reason: impl std::fmt::Display) -> ConduitError {
    ConduitError::invalid_program(format!("serialized program: {reason}"))
}

fn encode_operand(out: &mut Vec<u8>, operand: &Operand) {
    match operand {
        Operand::Page(p) => {
            out.push(TAG_PAGE);
            put_u64(out, p.index());
        }
        Operand::Result(id) => {
            out.push(TAG_RESULT);
            put_u32(out, id.index() as u32);
        }
        Operand::Immediate(v) => {
            out.push(TAG_IMMEDIATE);
            put_u64(out, *v as u64);
        }
    }
}

fn decode_operand(r: &mut Reader<'_>) -> Result<Operand> {
    match r.u8()? {
        TAG_PAGE => Ok(Operand::Page(LogicalPageId::new(r.u64()?))),
        TAG_RESULT => Ok(Operand::result(r.u32()?)),
        TAG_IMMEDIATE => Ok(Operand::Immediate(r.u64()? as i64)),
        tag => Err(corrupt(format!("unknown operand tag {tag}"))),
    }
}

impl VectorProgram {
    /// Serializes the program into the compact versioned byte format (see
    /// the [module documentation](self) for the layout).
    ///
    /// # Panics
    ///
    /// Panics if the program name exceeds `u32::MAX` bytes (impossible for
    /// any realistic program).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.name().len() + self.len() * 24);
        out.extend_from_slice(&PROGRAM_MAGIC);
        put_u16(&mut out, PROGRAM_FORMAT_VERSION);
        let name = self.name().as_bytes();
        let name_len = u32::try_from(name.len()).expect("program name length fits in u32");
        put_u32(&mut out, name_len);
        out.extend_from_slice(name);
        put_u64(&mut out, self.vectorized_fraction.to_bits());
        put_u32(&mut out, self.len() as u32);
        for inst in self.iter() {
            put_u16(&mut out, inst.op.encoding());
            put_u32(&mut out, inst.lanes);
            put_u32(&mut out, inst.elem_bits);
            out.push(inst.srcs.len().min(u8::MAX as usize) as u8);
            for src in &inst.srcs {
                encode_operand(&mut out, src);
            }
            match inst.dst_page {
                Some(p) => {
                    out.push(1);
                    put_u64(&mut out, p.index());
                }
                None => out.push(0),
            }
            let flags = u8::from(inst.meta.loop_id.is_some())
                | (u8::from(inst.meta.strip_index.is_some()) << 1);
            out.push(flags);
            if let Some(l) = inst.meta.loop_id {
                put_u32(&mut out, l);
            }
            if let Some(s) = inst.meta.strip_index {
                put_u32(&mut out, s);
            }
            put_u32(&mut out, inst.meta.reuse_hint);
        }
        out
    }

    /// Decodes a program serialized by [`VectorProgram::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] for a bad magic/version,
    /// truncated or trailing bytes, unknown tags or op encodings, and any
    /// program that fails [`VectorProgram::validate`] after decoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<VectorProgram> {
        // The shared Reader reports truncation as CorruptCheckpoint; this
        // decoder's contract is InvalidProgram for *any* malformed input.
        Self::decode(bytes).map_err(|e| match e {
            ConduitError::CorruptCheckpoint { reason } => corrupt(reason),
            other => other,
        })
    }

    fn decode(bytes: &[u8]) -> Result<VectorProgram> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != PROGRAM_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = r.u16()?;
        if version != PROGRAM_FORMAT_VERSION {
            return Err(corrupt(format!(
                "unsupported format version {version} (expected {PROGRAM_FORMAT_VERSION})"
            )));
        }
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| corrupt("name is not valid UTF-8"))?
            .to_string();
        let fraction = f64::from_bits(r.u64()?);
        if !fraction.is_finite() {
            return Err(corrupt("vectorized fraction is not finite"));
        }
        let count = r.u32()? as usize;
        let mut program = VectorProgram::new(name);
        program.vectorized_fraction = fraction;
        for i in 0..count {
            let code = r.u16()?;
            let op = OpType::from_encoding(code)
                .ok_or_else(|| corrupt(format!("unknown op encoding {code}")))?;
            let lanes = r.u32()?;
            let elem_bits = r.u32()?;
            let n_srcs = r.u8()? as usize;
            let mut srcs = Vec::with_capacity(n_srcs);
            for _ in 0..n_srcs {
                srcs.push(decode_operand(&mut r)?);
            }
            let mut inst = VectorInst::with_srcs(i as u32, op, srcs)
                .lanes(lanes)
                .elem_bits(elem_bits);
            if r.u8()? == 1 {
                inst = inst.store_to(LogicalPageId::new(r.u64()?));
            }
            let flags = r.u8()?;
            if flags & !0b11 != 0 {
                return Err(corrupt(format!("unknown metadata flags {flags:#x}")));
            }
            let mut meta = InstMetadata::default();
            if flags & 0b01 != 0 {
                meta.loop_id = Some(r.u32()?);
            }
            if flags & 0b10 != 0 {
                meta.strip_index = Some(r.u32()?);
            }
            meta.reuse_hint = r.u32()?;
            program.push(inst.meta(meta));
        }
        if !r.finished() {
            return Err(corrupt("trailing bytes after last instruction"));
        }
        program.validate().map_err(ConduitError::invalid_program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> VectorProgram {
        let mut prog = VectorProgram::new("sample");
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
        let b = prog.push_binary(OpType::Add, Operand::result(a), Operand::Immediate(-3));
        prog.push(
            VectorInst::binary(2, OpType::Mul, Operand::result(b), Operand::page(8))
                .lanes(2048)
                .elem_bits(8)
                .store_to(LogicalPageId::new(16))
                .meta(InstMetadata {
                    loop_id: Some(7),
                    strip_index: Some(2),
                    reuse_hint: 5,
                }),
        );
        prog.vectorized_fraction = 0.875;
        prog
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let prog = sample_program();
        let back = VectorProgram::from_bytes(&prog.to_bytes()).unwrap();
        assert_eq!(back, prog);
        assert_eq!(back.name(), "sample");
        assert_eq!(back.vectorized_fraction, 0.875);
        assert_eq!(back.insts()[2].meta.loop_id, Some(7));
        assert_eq!(back.insts()[1].srcs[1], Operand::Immediate(-3));
    }

    #[test]
    fn empty_program_roundtrips() {
        let prog = VectorProgram::new("empty");
        let back = VectorProgram::from_bytes(&prog.to_bytes()).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn every_op_type_roundtrips() {
        for op in OpType::ALL {
            let mut prog = VectorProgram::new("ops");
            let srcs: Vec<Operand> = (0..op.arity() as u64).map(Operand::page).collect();
            prog.push(VectorInst::with_srcs(0, op, srcs));
            let back = VectorProgram::from_bytes(&prog.to_bytes()).unwrap();
            assert_eq!(back, prog, "{op}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sample_program().to_bytes();
        bytes[0] = b'X';
        assert!(VectorProgram::from_bytes(&bytes).is_err());
        let mut bytes = sample_program().to_bytes();
        bytes[4] = 0xFF;
        assert!(VectorProgram::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let bytes = sample_program().to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 3] {
            assert!(
                VectorProgram::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(VectorProgram::from_bytes(&extended).is_err());
    }

    #[test]
    fn corrupt_op_encoding_is_rejected() {
        let prog = sample_program();
        let mut bytes = prog.to_bytes();
        // The first op encoding sits right after magic+version+name+fraction
        // +count.
        let off = 4 + 2 + 4 + prog.name().len() + 8 + 4;
        bytes[off] = 0xFF;
        bytes[off + 1] = 0xFF;
        assert!(VectorProgram::from_bytes(&bytes).is_err());
    }

    #[test]
    fn format_is_stable_for_a_known_program() {
        // Guards the on-disk format itself: if the layout changes, bump
        // PROGRAM_FORMAT_VERSION and regenerate golden data.
        let mut prog = VectorProgram::new("k");
        prog.push_binary(OpType::And, Operand::page(1), Operand::page(2));
        let bytes = prog.to_bytes();
        let expected: Vec<u8> = vec![
            b'C', b'V', b'P', b'1', // magic
            1, 0, // version
            1, 0, 0, 0, b'k', // name
            0, 0, 0, 0, 0, 0, 240, 63, // 1.0f64
            1, 0, 0, 0, // count
            1, 0, // op=And encoding 1
            0, 16, 0, 0, // lanes 4096
            32, 0, 0, 0, // elem_bits
            2, // srcs
            0, 1, 0, 0, 0, 0, 0, 0, 0, // page 1
            0, 2, 0, 0, 0, 0, 0, 0, 0, // page 2
            0, // no dst
            0, // no meta flags
            0, 0, 0, 0, // reuse_hint
        ];
        assert_eq!(bytes, expected);
    }
}
