//! Simulation time units.
//!
//! The simulator keeps time in integer **picoseconds** so that sub-nanosecond
//! DRAM timings (e.g. an LPDDR4-1866 clock period of ~1.07 ns) can be
//! represented exactly while microsecond-scale flash operations still fit
//! comfortably in a `u64` (over 200 days of simulated time).
//!
//! Two newtypes are provided: [`SimTime`] is a point on the simulation
//! timeline and [`Duration`] is a span between two points. Only the
//! operations that make physical sense are implemented (`SimTime + Duration`,
//! `SimTime - SimTime`, `Duration + Duration`, ...), which prevents a whole
//! class of unit bugs at compile time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Number of picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Number of picoseconds per millisecond.
const PS_PER_MS: u64 = 1_000_000_000;

/// A span of simulated time, stored in integer picoseconds.
///
/// # Examples
///
/// ```
/// use conduit_types::Duration;
///
/// let t_read = Duration::from_us(22.5);
/// let t_and = Duration::from_ns(20.0);
/// assert!(t_read > t_and);
/// assert_eq!((t_and + t_and).as_ns(), 40.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from integer picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Creates a duration from (possibly fractional) nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Self {
        debug_assert!(ns.is_finite() && ns >= 0.0, "duration must be non-negative");
        Duration((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Creates a duration from (possibly fractional) microseconds.
    pub fn from_us(us: f64) -> Self {
        debug_assert!(us.is_finite() && us >= 0.0, "duration must be non-negative");
        Duration((us * PS_PER_US as f64).round() as u64)
    }

    /// Creates a duration from (possibly fractional) milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        debug_assert!(ms.is_finite() && ms >= 0.0, "duration must be non-negative");
        Duration((ms * PS_PER_MS as f64).round() as u64)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        Duration((s * 1e12).round() as u64)
    }

    /// Duration of `cycles` clock cycles at `freq_hz`.
    ///
    /// ```
    /// use conduit_types::Duration;
    /// // 3 cycles at 1.5 GHz = 2 ns
    /// assert_eq!(Duration::from_cycles(3, 1.5e9).as_ns(), 2.0);
    /// ```
    pub fn from_cycles(cycles: u64, freq_hz: f64) -> Self {
        debug_assert!(freq_hz > 0.0, "frequency must be positive");
        Duration(((cycles as f64) * 1e12 / freq_hz).round() as u64)
    }

    /// The raw value in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// The value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// The value in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Whether this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Time to transfer `bytes` at `bytes_per_sec`.
    ///
    /// ```
    /// use conduit_types::Duration;
    /// // 16 KiB over 1.2 GB/s ≈ 13.65 µs
    /// let t = Duration::for_transfer(16 * 1024, 1.2e9);
    /// assert!((t.as_us() - 13.65).abs() < 0.1);
    /// ```
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> Self {
        debug_assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Duration(((bytes as f64) / bytes_per_sec * 1e12).round() as u64)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        debug_assert!(rhs.is_finite() && rhs >= 0.0);
        Duration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_MS {
            write!(f, "{:.3} ms", self.as_ms())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3} us", self.as_us())
        } else if self.0 >= PS_PER_NS {
            write!(f, "{:.3} ns", self.as_ns())
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

/// A point on the simulation timeline, stored in integer picoseconds since
/// the start of the simulation.
///
/// # Examples
///
/// ```
/// use conduit_types::{Duration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + Duration::from_us(5.0);
/// assert_eq!(later - start, Duration::from_us(5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The end of representable simulated time (~213 days). Saturating
    /// arithmetic clamps here; open-loop arrival generators treat it as
    /// "never" and stop emitting once a stream saturates.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a point in time from integer picoseconds since time zero.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// The raw value in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// The value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// The value in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_ps(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two time points.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    /// Saturating: the timeline clamps at the end of representable time
    /// (~213 simulated days) instead of panicking (debug) or wrapping the
    /// clock backwards (release) — pathological open-loop arrival offsets
    /// or extremely long-lived warm streams must degrade gracefully.
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_ps()))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_ps(self.0 - rhs.0)
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.as_ps())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Duration::from_ps(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_roundtrip() {
        assert_eq!(Duration::from_ns(1.0).as_ps(), 1_000);
        assert_eq!(Duration::from_us(22.5).as_ns(), 22_500.0);
        assert_eq!(Duration::from_ms(3.5).as_us(), 3_500.0);
        assert_eq!(Duration::from_secs(1.0).as_ms(), 1_000.0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_ns(10.0);
        let b = Duration::from_ns(30.0);
        assert_eq!(a + b, Duration::from_ns(40.0));
        assert_eq!(b - a, Duration::from_ns(20.0));
        assert_eq!(a * 4, Duration::from_ns(40.0));
        assert_eq!(b / 3, Duration::from_ns(10.0));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        let total: Duration = [a, b, a].into_iter().sum();
        assert_eq!(total, Duration::from_ns(50.0));
    }

    #[test]
    fn simtime_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_us(1.0);
        let t2 = t1 + Duration::from_us(2.0);
        assert_eq!(t2 - t0, Duration::from_us(3.0));
        assert_eq!(t2 - Duration::from_us(3.0), t0);
        assert_eq!(t0.saturating_since(t2), Duration::ZERO);
        assert_eq!(t2.saturating_since(t0), Duration::from_us(3.0));
        assert_eq!(t1.max(t2), t2);
        assert_eq!(t1.min(t0), t0);
        // Addition saturates at the end of representable time.
        assert_eq!(SimTime::MAX + Duration::from_us(1.0), SimTime::MAX);
        assert_eq!(
            SimTime::from_ps(u64::MAX - 1) + Duration::from_ps(5),
            SimTime::MAX
        );
    }

    #[test]
    fn cycles_and_transfer_helpers() {
        // 1500 cycles at 1.5 GHz is exactly 1 us.
        assert_eq!(Duration::from_cycles(1500, 1.5e9), Duration::from_us(1.0));
        // 8 GB/s link moves 8 bytes per ns.
        assert_eq!(Duration::for_transfer(8, 8e9).as_ns(), 1.0);
    }

    #[test]
    fn display_uses_sensible_units() {
        assert_eq!(format!("{}", Duration::from_ns(20.0)), "20.000 ns");
        assert_eq!(format!("{}", Duration::from_us(22.5)), "22.500 us");
        assert_eq!(format!("{}", Duration::from_ms(3.5)), "3.500 ms");
        assert_eq!(format!("{}", Duration::from_ps(5)), "5 ps");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Duration::from_ns(1.0) < Duration::from_us(1.0));
        assert!(SimTime::from_ps(10) < SimTime::from_ps(20));
    }
}
