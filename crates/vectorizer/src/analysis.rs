//! Loop dependence analysis.
//!
//! Decides, per loop, whether auto-vectorization is legal and at what strip
//! length. The paper (§7) lists the situations where auto-vectorization
//! fails — complex control flow, loop-carried dependences, indirect accesses
//! — and §4.3.1 describes the strip-mining fallback for partially
//! vectorizable loops.

use crate::kernel::Loop;

/// The vectorizability classification of one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopClass {
    /// No loop-carried dependence: the full vector width can be used.
    FullyVectorizable,
    /// A loop-carried dependence of the given distance limits the safe strip
    /// length (strip-mining / partial vectorization).
    PartiallyVectorizable {
        /// The largest number of consecutive iterations that can execute as
        /// one SIMD operation without violating the dependence.
        max_strip: u64,
    },
    /// The loop cannot be vectorized at all and stays scalar.
    NotVectorizable {
        /// Human-readable reason (reported to the user, mirroring
        /// `-Rpass-analysis=loop-vectorize`).
        reason: String,
    },
}

/// Dependence analysis over the affine loop-kernel IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DependenceAnalysis;

impl DependenceAnalysis {
    /// Minimum profitable strip length; below this the SIMD overhead is not
    /// worth it and the loop is left scalar.
    pub const MIN_PROFITABLE_STRIP: u64 = 64;

    /// Classifies a loop.
    pub fn classify(l: &Loop) -> LoopClass {
        if l.has_complex_control_flow {
            return LoopClass::NotVectorizable {
                reason: format!("loop `{}` has complex control flow", l.name),
            };
        }
        if l.body.is_empty() {
            return LoopClass::NotVectorizable {
                reason: format!("loop `{}` has an empty body", l.name),
            };
        }
        // Find the smallest non-zero dependence distance between a write to
        // an array and any read of the same array in the loop body.
        let mut min_distance: Option<u64> = None;
        for write_stmt in &l.body {
            let w = write_stmt.target;
            for stmt in &l.body {
                for r in stmt.expr.reads() {
                    if r.array == w.array && r.offset != w.offset {
                        let dist = (w.offset - r.offset).unsigned_abs();
                        min_distance = Some(match min_distance {
                            Some(d) => d.min(dist),
                            None => dist,
                        });
                    }
                }
            }
        }
        match min_distance {
            None => LoopClass::FullyVectorizable,
            Some(d) if d < Self::MIN_PROFITABLE_STRIP => LoopClass::NotVectorizable {
                reason: format!(
                    "loop `{}` has a loop-carried dependence of distance {d}",
                    l.name
                ),
            },
            Some(d) => LoopClass::PartiallyVectorizable { max_strip: d },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArrayDecl, Expr, Kernel, Statement};
    use conduit_types::OpType;

    fn kernel3() -> (
        Kernel,
        crate::ArrayHandle,
        crate::ArrayHandle,
        crate::ArrayHandle,
    ) {
        let mut k = Kernel::new("k");
        let a = k.declare_array(ArrayDecl::new("a", 8192, 32));
        let b = k.declare_array(ArrayDecl::new("b", 8192, 32));
        let c = k.declare_array(ArrayDecl::new("c", 8192, 32));
        (k, a, b, c)
    }

    #[test]
    fn independent_streams_are_fully_vectorizable() {
        let (_, a, b, c) = kernel3();
        let l = Loop::new("add", 8192).with_statement(Statement::new(
            c.at(0),
            Expr::binary(OpType::Add, Expr::load(a.at(0)), Expr::load(b.at(0))),
        ));
        assert_eq!(
            DependenceAnalysis::classify(&l),
            LoopClass::FullyVectorizable
        );
    }

    #[test]
    fn stencil_reading_neighbours_of_another_array_is_vectorizable() {
        let (_, a, b, _) = kernel3();
        // b[i] = a[i-1] + a[i+1]: reads and writes touch different arrays.
        let l = Loop::new("stencil", 8192).with_statement(Statement::new(
            b.at(0),
            Expr::binary(OpType::Add, Expr::load(a.at(-1)), Expr::load(a.at(1))),
        ));
        assert_eq!(
            DependenceAnalysis::classify(&l),
            LoopClass::FullyVectorizable
        );
    }

    #[test]
    fn short_recurrence_is_not_vectorizable() {
        let (_, a, _, _) = kernel3();
        // a[i] = a[i-1] + 1: distance-1 recurrence.
        let l = Loop::new("scan", 8192).with_statement(Statement::new(
            a.at(0),
            Expr::binary(OpType::Add, Expr::load(a.at(-1)), Expr::Const(1)),
        ));
        assert!(matches!(
            DependenceAnalysis::classify(&l),
            LoopClass::NotVectorizable { .. }
        ));
    }

    #[test]
    fn long_distance_dependence_allows_strip_mining() {
        let (_, a, _, _) = kernel3();
        // a[i] = a[i-1024] + 1: safe to vectorize 1024 lanes at a time.
        let l = Loop::new("strided", 8192).with_statement(Statement::new(
            a.at(0),
            Expr::binary(OpType::Add, Expr::load(a.at(-1024)), Expr::Const(1)),
        ));
        assert_eq!(
            DependenceAnalysis::classify(&l),
            LoopClass::PartiallyVectorizable { max_strip: 1024 }
        );
    }

    #[test]
    fn control_flow_blocks_vectorization() {
        let (_, a, b, _) = kernel3();
        let l = Loop::new("branchy", 100)
            .with_statement(Statement::new(
                b.at(0),
                Expr::binary(OpType::Add, Expr::load(a.at(0)), Expr::Const(1)),
            ))
            .with_complex_control_flow();
        assert!(matches!(
            DependenceAnalysis::classify(&l),
            LoopClass::NotVectorizable { .. }
        ));
    }

    #[test]
    fn empty_body_is_not_vectorizable() {
        let l = Loop::new("empty", 100);
        assert!(matches!(
            DependenceAnalysis::classify(&l),
            LoopClass::NotVectorizable { .. }
        ));
    }

    #[test]
    fn same_element_update_is_fine() {
        let (_, a, b, _) = kernel3();
        // a[i] = a[i] ^ b[i]: no loop-carried dependence.
        let l = Loop::new("inplace", 4096).with_statement(Statement::new(
            a.at(0),
            Expr::binary(OpType::Xor, Expr::load(a.at(0)), Expr::load(b.at(0))),
        ));
        assert_eq!(
            DependenceAnalysis::classify(&l),
            LoopClass::FullyVectorizable
        );
    }
}
