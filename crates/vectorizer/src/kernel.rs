//! The scalar loop-kernel intermediate representation.
//!
//! A [`Kernel`] is a list of arrays (the application's data, laid out in the
//! SSD's logical address space) and a list of loops. Each loop iterates an
//! induction variable `i` over `0..trip_count` and executes straight-line
//! [`Statement`]s whose array accesses are affine in `i` (`a[i + offset]`),
//! which is the shape loop auto-vectorizers handle.

use conduit_types::{LogicalPageId, OpType, PAGE_BYTES};
use std::fmt;

/// Identifier of an array declared in a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayHandle(pub(crate) usize);

impl ArrayHandle {
    /// An affine reference `array[i + offset]` to this array.
    pub fn at(self, offset: i64) -> ArrayRef {
        ArrayRef {
            array: self,
            offset,
        }
    }
}

/// Declaration of one array used by a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of elements.
    pub len: u64,
    /// Element width in bits.
    pub elem_bits: u32,
    /// First logical page of the array's backing storage. Assigned by
    /// [`Kernel::declare_array`] when left as `None`.
    pub base_page: Option<LogicalPageId>,
}

impl ArrayDecl {
    /// Declares an array of `len` elements of `elem_bits` bits each.
    pub fn new(name: impl Into<String>, len: u64, elem_bits: u32) -> Self {
        ArrayDecl {
            name: name.into(),
            len,
            elem_bits,
            base_page: None,
        }
    }

    /// Sets an explicit base logical page.
    pub fn with_base_page(mut self, page: LogicalPageId) -> Self {
        self.base_page = Some(page);
        self
    }

    /// Number of bytes the array occupies.
    pub fn bytes(&self) -> u64 {
        self.len * self.elem_bits as u64 / 8
    }

    /// Number of logical pages the array occupies.
    pub fn pages(&self) -> u64 {
        self.bytes().div_ceil(PAGE_BYTES).max(1)
    }
}

/// An affine array reference `array[i + offset]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayHandle,
    /// Constant offset added to the induction variable.
    pub offset: i64,
}

/// A scalar expression over array references and constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Load of an array element.
    Load(ArrayRef),
    /// Integer constant (broadcast when vectorized).
    Const(i64),
    /// Unary operation.
    Unary(OpType, Box<Expr>),
    /// Binary operation.
    Binary(OpType, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a load.
    pub fn load(r: ArrayRef) -> Expr {
        Expr::Load(r)
    }

    /// Convenience constructor for a unary operation.
    pub fn unary(op: OpType, a: Expr) -> Expr {
        Expr::Unary(op, Box::new(a))
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(op: OpType, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// All array references read by this expression.
    pub fn reads(&self) -> Vec<ArrayRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<ArrayRef>) {
        match self {
            Expr::Load(r) => out.push(*r),
            Expr::Const(_) => {}
            Expr::Unary(_, a) => a.collect_reads(out),
            Expr::Binary(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
        }
    }

    /// Number of operations (unary + binary nodes) in this expression.
    pub fn op_count(&self) -> u64 {
        match self {
            Expr::Load(_) | Expr::Const(_) => 0,
            Expr::Unary(_, a) => 1 + a.op_count(),
            Expr::Binary(_, a, b) => 1 + a.op_count() + b.op_count(),
        }
    }
}

/// One assignment inside a loop body: `target[i + offset] = expr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// The written array element.
    pub target: ArrayRef,
    /// The computed expression.
    pub expr: Expr,
}

impl Statement {
    /// Creates a statement `target = expr`.
    pub fn new(target: ArrayRef, expr: Expr) -> Self {
        Statement { target, expr }
    }
}

/// A countable loop over an induction variable with straight-line body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Number of scalar iterations.
    pub trip_count: u64,
    /// Loop body.
    pub body: Vec<Statement>,
    /// Whether the loop contains control flow, indirect accesses, or
    /// synchronization that forbids vectorization outright (§7 of the
    /// paper lists these as auto-vectorization failure cases).
    pub has_complex_control_flow: bool,
    /// How many times the loop body re-executes over the same data (e.g.
    /// time steps of a stencil); used to model data reuse.
    pub repeat: u64,
}

impl Loop {
    /// Creates an empty loop with the given trip count.
    pub fn new(name: impl Into<String>, trip_count: u64) -> Self {
        Loop {
            name: name.into(),
            trip_count,
            body: Vec::new(),
            has_complex_control_flow: false,
            repeat: 1,
        }
    }

    /// Builder-style: appends a statement to the body.
    pub fn with_statement(mut self, stmt: Statement) -> Self {
        self.body.push(stmt);
        self
    }

    /// Builder-style: marks the loop as containing complex control flow.
    pub fn with_complex_control_flow(mut self) -> Self {
        self.has_complex_control_flow = true;
        self
    }

    /// Builder-style: repeats the loop `repeat` times (outer time loop).
    pub fn with_repeat(mut self, repeat: u64) -> Self {
        self.repeat = repeat.max(1);
        self
    }

    /// Total scalar operations the loop performs (over all repeats).
    pub fn scalar_ops(&self) -> u64 {
        let per_iter: u64 = self.body.iter().map(|s| s.expr.op_count().max(1)).sum();
        per_iter * self.trip_count * self.repeat
    }
}

/// A whole kernel: arrays plus loops, the unit the vectorizer consumes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Kernel {
    name: String,
    arrays: Vec<ArrayDecl>,
    loops: Vec<Loop>,
    next_free_page: u64,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            arrays: Vec::new(),
            loops: Vec::new(),
            next_free_page: 0,
        }
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an array, assigning it a contiguous logical page range right
    /// after the previously declared arrays unless an explicit base page was
    /// provided. Returns a handle for building references.
    pub fn declare_array(&mut self, mut decl: ArrayDecl) -> ArrayHandle {
        if decl.base_page.is_none() {
            decl.base_page = Some(LogicalPageId::new(self.next_free_page));
        }
        let end = decl.base_page.expect("base page just set").index() + decl.pages();
        self.next_free_page = self.next_free_page.max(end);
        self.arrays.push(decl);
        ArrayHandle(self.arrays.len() - 1)
    }

    /// Appends a loop to the kernel.
    pub fn push_loop(&mut self, l: Loop) {
        self.loops.push(l);
    }

    /// The declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The declaration behind a handle.
    pub fn array(&self, handle: ArrayHandle) -> &ArrayDecl {
        &self.arrays[handle.0]
    }

    /// The loops, in program order.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Total scalar operations across all loops.
    pub fn total_scalar_ops(&self) -> u64 {
        self.loops.iter().map(|l| l.scalar_ops()).sum()
    }

    /// Total data footprint in logical pages.
    pub fn footprint_pages(&self) -> u64 {
        self.arrays.iter().map(|a| a.pages()).sum()
    }

    /// The logical page holding element `elem_index` of `array`.
    pub fn page_of(&self, array: ArrayHandle, elem_index: u64) -> LogicalPageId {
        let decl = self.array(array);
        let base = decl.base_page.expect("arrays always get a base page");
        let byte = elem_index * decl.elem_bits as u64 / 8;
        LogicalPageId::new(base.index() + byte / PAGE_BYTES)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel {} ({} arrays, {} loops)",
            self.name,
            self.arrays.len(),
            self.loops.len()
        )?;
        for l in &self.loops {
            writeln!(
                f,
                "  loop {}: {} iters x{} ({} stmts)",
                l.name,
                l.trip_count,
                l.repeat,
                l.body.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_layout_is_contiguous_and_non_overlapping() {
        let mut k = Kernel::new("k");
        let a = k.declare_array(ArrayDecl::new("a", 2048, 32)); // 8 KiB = 2 pages
        let b = k.declare_array(ArrayDecl::new("b", 1024, 8)); // 1 KiB = 1 page
        let c = k.declare_array(ArrayDecl::new("c", 4096, 32)); // 16 KiB = 4 pages
        assert_eq!(k.array(a).base_page, Some(LogicalPageId::new(0)));
        assert_eq!(k.array(b).base_page, Some(LogicalPageId::new(2)));
        assert_eq!(k.array(c).base_page, Some(LogicalPageId::new(3)));
        assert_eq!(k.footprint_pages(), 7);
    }

    #[test]
    fn page_of_accounts_for_element_width() {
        let mut k = Kernel::new("k");
        let a = k.declare_array(ArrayDecl::new("a", 8192, 32));
        assert_eq!(k.page_of(a, 0), LogicalPageId::new(0));
        assert_eq!(k.page_of(a, 1023), LogicalPageId::new(0));
        assert_eq!(k.page_of(a, 1024), LogicalPageId::new(1));
        let b = k.declare_array(ArrayDecl::new("b", 8192, 8));
        let b_base = k.array(b).base_page.unwrap().index();
        assert_eq!(k.page_of(b, 4095).index(), b_base);
        assert_eq!(k.page_of(b, 4096).index(), b_base + 1);
    }

    #[test]
    fn expr_reads_and_op_count() {
        let mut k = Kernel::new("k");
        let a = k.declare_array(ArrayDecl::new("a", 128, 32));
        let b = k.declare_array(ArrayDecl::new("b", 128, 32));
        let e = Expr::binary(
            OpType::Add,
            Expr::load(a.at(0)),
            Expr::binary(OpType::Mul, Expr::load(b.at(1)), Expr::Const(3)),
        );
        assert_eq!(e.op_count(), 2);
        let reads = e.reads();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0], a.at(0));
        assert_eq!(reads[1], b.at(1));
    }

    #[test]
    fn loop_scalar_ops_scale_with_trip_count_and_repeat() {
        let mut k = Kernel::new("k");
        let a = k.declare_array(ArrayDecl::new("a", 128, 32));
        let l = Loop::new("l", 100)
            .with_statement(Statement::new(
                a.at(0),
                Expr::binary(OpType::Add, Expr::load(a.at(0)), Expr::Const(1)),
            ))
            .with_repeat(3);
        assert_eq!(l.scalar_ops(), 300);
        k.push_loop(l);
        assert_eq!(k.total_scalar_ops(), 300);
    }

    #[test]
    fn explicit_base_page_is_respected() {
        let mut k = Kernel::new("k");
        let a =
            k.declare_array(ArrayDecl::new("a", 1024, 32).with_base_page(LogicalPageId::new(100)));
        assert_eq!(k.array(a).base_page, Some(LogicalPageId::new(100)));
        // The next implicit array starts after it.
        let b = k.declare_array(ArrayDecl::new("b", 1024, 32));
        assert_eq!(k.array(b).base_page, Some(LogicalPageId::new(101)));
    }

    #[test]
    fn display_mentions_loops() {
        let mut k = Kernel::new("demo");
        k.push_loop(Loop::new("body", 10));
        let s = k.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("body"));
    }
}
