//! # conduit-vectorizer
//!
//! Compile-time preprocessing stage of the Conduit NDP framework.
//!
//! The paper's compile-time stage runs an LLVM loop-auto-vectorization pass
//! with `-force-vector-width=4096` so that every vectorized instruction
//! matches a NAND flash page (16 KiB for 32-bit lanes), embeds offloading
//! metadata in the optimized IR, and compiles the result to an ARM binary
//! that is shipped to the SSD. This crate reproduces that stage for a small
//! loop-kernel IR:
//!
//! * [`Kernel`], [`Loop`], [`Statement`], [`Expr`] — a scalar loop-nest
//!   representation with affine array accesses (the input "application
//!   code"),
//! * [`DependenceAnalysis`] — detects loop-carried dependences and decides
//!   whether a loop is fully vectorizable, partially vectorizable
//!   (strip-mined to the dependence distance), or must stay scalar,
//! * [`Vectorizer`] — transforms each loop into page-aligned
//!   [`conduit_types::VectorInst`]s with embedded metadata and emits a
//!   [`conduit_types::VectorProgram`] plus a [`VectorizationReport`]
//!   (vectorized-fraction statistics that reproduce the "Vectorizable Code %"
//!   column of Table 3).
//!
//! ## Example
//!
//! ```
//! use conduit_types::OpType;
//! use conduit_vectorizer::{ArrayDecl, Expr, Kernel, Loop, Statement, Vectorizer};
//!
//! // for i in 0..8192 { c[i] = a[i] + b[i]; }
//! let mut kernel = Kernel::new("vec_add");
//! let a = kernel.declare_array(ArrayDecl::new("a", 8192, 32));
//! let b = kernel.declare_array(ArrayDecl::new("b", 8192, 32));
//! let c = kernel.declare_array(ArrayDecl::new("c", 8192, 32));
//! kernel.push_loop(Loop::new("add", 8192).with_statement(Statement::new(
//!     c.at(0),
//!     Expr::binary(OpType::Add, Expr::load(a.at(0)), Expr::load(b.at(0))),
//! )));
//!
//! let out = Vectorizer::default().vectorize(&kernel)?;
//! assert!(out.report.vectorized_fraction > 0.99);
//! assert_eq!(out.program.len(), 2); // 8192 iterations / 4096 lanes
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

mod analysis;
mod kernel;
mod vectorize;

pub use analysis::{DependenceAnalysis, LoopClass};
pub use kernel::{ArrayDecl, ArrayHandle, ArrayRef, Expr, Kernel, Loop, Statement};
pub use vectorize::{VectorizationReport, Vectorizer, VectorizerOutput};
