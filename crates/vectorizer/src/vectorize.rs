//! The loop auto-vectorization pass.
//!
//! Transforms each loop of a [`Kernel`] into page-aligned SIMD instructions:
//!
//! * fully vectorizable loops are emitted in strips of the configured vector
//!   width (4096 lanes by default, i.e. one 16 KiB flash page of 32-bit
//!   elements),
//! * partially vectorizable loops are strip-mined down to their dependence
//!   distance,
//! * non-vectorizable loops (and left-over scalar tails that are too small to
//!   be worth a SIMD operation) become [`OpType::Scalar`] regions that the
//!   runtime can only place on general-purpose cores.
//!
//! Every emitted instruction carries the metadata (loop id, strip index,
//! reuse hint) that the paper's compile-time pass embeds in the optimized IR.

use std::collections::HashMap;

use conduit_types::{
    ConduitError, InstMetadata, OpType, Operand, Result, VectorInst, VectorProgram,
};

use crate::analysis::{DependenceAnalysis, LoopClass};
use crate::kernel::{Expr, Kernel, Loop};

/// Summary of what the vectorizer did to a kernel, mirroring the
/// "Vectorizable Code %" characterization of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VectorizationReport {
    /// Number of loops examined.
    pub loops_total: usize,
    /// Loops vectorized at full width.
    pub loops_vectorized: usize,
    /// Loops vectorized at a reduced (strip-mined) width.
    pub loops_partial: usize,
    /// Loops left scalar.
    pub loops_scalar: usize,
    /// SIMD instructions emitted.
    pub vector_insts: usize,
    /// Scalar-region instructions emitted.
    pub scalar_insts: usize,
    /// Fraction of the kernel's scalar operations covered by SIMD
    /// instructions.
    pub vectorized_fraction: f64,
}

/// The result of vectorizing a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorizerOutput {
    /// The emitted vector program (the "binary" shipped to the SSD).
    pub program: VectorProgram,
    /// Vectorization statistics.
    pub report: VectorizationReport,
}

/// The auto-vectorizer.
///
/// # Examples
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vectorizer {
    /// Target vector width in lanes (`-force-vector-width` in the paper).
    pub vector_width: u32,
}

impl Default for Vectorizer {
    fn default() -> Self {
        Vectorizer { vector_width: 4096 }
    }
}

impl Vectorizer {
    /// Creates a vectorizer with an explicit vector width (used by the
    /// vector-width ablation).
    pub fn with_width(vector_width: u32) -> Self {
        Vectorizer {
            vector_width: vector_width.max(1),
        }
    }

    /// Vectorizes a kernel into a [`VectorProgram`].
    ///
    /// # Errors
    ///
    /// Returns [`ConduitError::InvalidProgram`] if the kernel has no loops or
    /// the emitted program fails validation (which would indicate a bug in
    /// the pass itself).
    pub fn vectorize(&self, kernel: &Kernel) -> Result<VectorizerOutput> {
        if kernel.loops().is_empty() {
            return Err(ConduitError::invalid_program(format!(
                "kernel `{}` has no loops to vectorize",
                kernel.name()
            )));
        }
        let mut program = VectorProgram::new(kernel.name());
        let mut report = VectorizationReport {
            loops_total: kernel.loops().len(),
            ..VectorizationReport::default()
        };
        let mut vectorized_ops = 0u64;
        let total_ops = kernel.total_scalar_ops().max(1);

        for (loop_id, l) in kernel.loops().iter().enumerate() {
            let class = DependenceAnalysis::classify(l);
            let strip = match &class {
                LoopClass::FullyVectorizable => {
                    report.loops_vectorized += 1;
                    self.vector_width as u64
                }
                LoopClass::PartiallyVectorizable { max_strip } => {
                    report.loops_partial += 1;
                    (*max_strip).min(self.vector_width as u64)
                }
                LoopClass::NotVectorizable { .. } => {
                    report.loops_scalar += 1;
                    self.emit_scalar_loop(&mut program, kernel, l, loop_id as u32, &mut report);
                    continue;
                }
            };
            vectorized_ops += l.scalar_ops();
            self.emit_vector_loop(&mut program, kernel, l, loop_id as u32, strip, &mut report);
        }

        report.vectorized_fraction = vectorized_ops as f64 / total_ops as f64;
        program.vectorized_fraction = report.vectorized_fraction;
        program.validate().map_err(ConduitError::invalid_program)?;
        Ok(VectorizerOutput { program, report })
    }

    fn emit_vector_loop(
        &self,
        program: &mut VectorProgram,
        kernel: &Kernel,
        l: &Loop,
        loop_id: u32,
        strip: u64,
        report: &mut VectorizationReport,
    ) {
        // Reuse hints: how many times each array is referenced per iteration
        // of the loop body (times the repeat count).
        let mut ref_counts: HashMap<usize, u32> = HashMap::new();
        for stmt in &l.body {
            for r in stmt.expr.reads() {
                *ref_counts.entry(r.array.0).or_insert(0) += 1;
            }
        }

        for rep in 0..l.repeat {
            let mut strip_index = 0u32;
            let mut start = 0u64;
            while start < l.trip_count {
                let lanes = strip.min(l.trip_count - start) as u32;
                let meta = InstMetadata {
                    loop_id: Some(loop_id),
                    strip_index: Some(strip_index + (rep as u32) * 1_000_000),
                    reuse_hint: l.repeat as u32,
                };
                for stmt in &l.body {
                    let elem_bits = kernel.array(stmt.target.array).elem_bits;
                    let result = self.emit_expr(
                        program, kernel, &stmt.expr, start, lanes, elem_bits, meta, report,
                    );
                    // The statement's final value is stored to the target
                    // array; rewrite the producing instruction (or emit a
                    // copy for bare loads/constants) so it carries dst_page.
                    let dst_elem = (start as i64 + stmt.target.offset).max(0) as u64;
                    let dst_page = kernel.page_of(stmt.target.array, dst_elem);
                    match result {
                        Operand::Result(_) => {
                            // Attach the store to the just-emitted producer.
                            let last = program.last_mut().expect("an instruction was just emitted");
                            last.dst_page = Some(dst_page);
                        }
                        src => {
                            let copy = VectorInst::unary(0, OpType::Copy, src)
                                .lanes(lanes)
                                .elem_bits(elem_bits)
                                .store_to(dst_page)
                                .meta(meta);
                            program.push(copy);
                            report.vector_insts += 1;
                        }
                    }
                }
                start += strip;
                strip_index += 1;
            }
        }
    }

    /// Emits the instruction tree for an expression and returns the operand
    /// that holds its value.
    #[allow(clippy::too_many_arguments)]
    fn emit_expr(
        &self,
        program: &mut VectorProgram,
        kernel: &Kernel,
        expr: &Expr,
        start: u64,
        lanes: u32,
        elem_bits: u32,
        meta: InstMetadata,
        report: &mut VectorizationReport,
    ) -> Operand {
        match expr {
            Expr::Const(v) => Operand::Immediate(*v),
            Expr::Load(r) => {
                let elem = (start as i64 + r.offset).max(0) as u64;
                Operand::Page(kernel.page_of(r.array, elem))
            }
            Expr::Unary(op, a) => {
                let a = self.emit_expr(program, kernel, a, start, lanes, elem_bits, meta, report);
                let inst = VectorInst::unary(0, *op, a)
                    .lanes(lanes)
                    .elem_bits(elem_bits)
                    .meta(meta);
                let id = program.push(inst);
                report.vector_insts += 1;
                Operand::Result(id)
            }
            Expr::Binary(op, a, b) => {
                let a = self.emit_expr(program, kernel, a, start, lanes, elem_bits, meta, report);
                let b = self.emit_expr(program, kernel, b, start, lanes, elem_bits, meta, report);
                let inst = VectorInst::binary(0, *op, a, b)
                    .lanes(lanes)
                    .elem_bits(elem_bits)
                    .meta(meta);
                let id = program.push(inst);
                report.vector_insts += 1;
                Operand::Result(id)
            }
        }
    }

    fn emit_scalar_loop(
        &self,
        program: &mut VectorProgram,
        kernel: &Kernel,
        l: &Loop,
        loop_id: u32,
        report: &mut VectorizationReport,
    ) {
        // The scalar region is chunked so that each Scalar instruction covers
        // at most `vector_width` iterations of scalar work; this keeps the
        // instruction count bounded while preserving the total work.
        let total_iters = l.trip_count * l.repeat;
        let chunk = self.vector_width as u64;
        let target_array = l
            .body
            .first()
            .map(|s| s.target)
            .unwrap_or_else(|| crate::kernel::ArrayHandle(0).at(0));
        let elem_bits = kernel
            .arrays()
            .get(target_array.array.0)
            .map_or(32, |a| a.elem_bits);
        let mut start = 0u64;
        let mut strip_index = 0u32;
        while start < total_iters {
            let lanes = chunk.min(total_iters - start) as u32;
            let page = kernel
                .arrays()
                .get(target_array.array.0)
                .map(|_| {
                    kernel.page_of(
                        target_array.array,
                        (start % l.trip_count.max(1))
                            .min(kernel.array(target_array.array).len.saturating_sub(1)),
                    )
                })
                .unwrap_or(conduit_types::LogicalPageId::new(0));
            let inst = VectorInst::unary(0, OpType::Scalar, Operand::Page(page))
                .lanes(lanes)
                .elem_bits(elem_bits)
                .meta(InstMetadata {
                    loop_id: Some(loop_id),
                    strip_index: Some(strip_index),
                    reuse_hint: 1,
                });
            program.push(inst);
            report.scalar_insts += 1;
            start += chunk;
            strip_index += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArrayDecl, Statement};
    use conduit_types::LatencyClass;

    fn vec_add_kernel(n: u64) -> Kernel {
        let mut k = Kernel::new("vec_add");
        let a = k.declare_array(ArrayDecl::new("a", n, 32));
        let b = k.declare_array(ArrayDecl::new("b", n, 32));
        let c = k.declare_array(ArrayDecl::new("c", n, 32));
        k.push_loop(Loop::new("add", n).with_statement(Statement::new(
            c.at(0),
            Expr::binary(OpType::Add, Expr::load(a.at(0)), Expr::load(b.at(0))),
        )));
        k
    }

    #[test]
    fn empty_kernel_is_rejected() {
        let k = Kernel::new("empty");
        assert!(Vectorizer::default().vectorize(&k).is_err());
    }

    #[test]
    fn full_width_strips() {
        let out = Vectorizer::default()
            .vectorize(&vec_add_kernel(8192))
            .unwrap();
        assert_eq!(out.program.len(), 2);
        assert!(out.program.iter().all(|i| i.lanes == 4096));
        assert!(out.program.iter().all(|i| i.dst_page.is_some()));
        assert_eq!(out.report.loops_vectorized, 1);
        assert!((out.report.vectorized_fraction - 1.0).abs() < 1e-9);
        assert!(out.program.validate().is_ok());
    }

    #[test]
    fn tail_strip_has_fewer_lanes() {
        let out = Vectorizer::default()
            .vectorize(&vec_add_kernel(5000))
            .unwrap();
        assert_eq!(out.program.len(), 2);
        assert_eq!(out.program.insts()[0].lanes, 4096);
        assert_eq!(out.program.insts()[1].lanes, 904);
    }

    #[test]
    fn custom_width_changes_strip_count() {
        let out = Vectorizer::with_width(1024)
            .vectorize(&vec_add_kernel(8192))
            .unwrap();
        assert_eq!(out.program.len(), 8);
        assert!(out.program.iter().all(|i| i.lanes == 1024));
    }

    #[test]
    fn expression_trees_become_dependent_instructions() {
        let mut k = Kernel::new("fma");
        let a = k.declare_array(ArrayDecl::new("a", 4096, 32));
        let b = k.declare_array(ArrayDecl::new("b", 4096, 32));
        let c = k.declare_array(ArrayDecl::new("c", 4096, 32));
        let d = k.declare_array(ArrayDecl::new("d", 4096, 32));
        // d[i] = a[i] * b[i] + c[i]
        k.push_loop(Loop::new("fma", 4096).with_statement(Statement::new(
            d.at(0),
            Expr::binary(
                OpType::Add,
                Expr::binary(OpType::Mul, Expr::load(a.at(0)), Expr::load(b.at(0))),
                Expr::load(c.at(0)),
            ),
        )));
        let out = Vectorizer::default().vectorize(&k).unwrap();
        assert_eq!(out.program.len(), 2);
        let add = &out.program.insts()[1];
        assert_eq!(add.op, OpType::Add);
        assert!(
            add.src_results().count() == 1,
            "add consumes the mul result"
        );
        assert!(add.dst_page.is_some());
        let (_, _, high) = out.program.latency_class_mix();
        assert_eq!(high, 1);
        assert_eq!(out.program.insts()[0].latency_class(), LatencyClass::High);
    }

    #[test]
    fn non_vectorizable_loops_become_scalar_regions() {
        let mut k = Kernel::new("scan");
        let a = k.declare_array(ArrayDecl::new("a", 8192, 32));
        k.push_loop(Loop::new("scan", 8192).with_statement(Statement::new(
            a.at(0),
            Expr::binary(OpType::Add, Expr::load(a.at(-1)), Expr::Const(1)),
        )));
        let out = Vectorizer::default().vectorize(&k).unwrap();
        assert_eq!(out.report.loops_scalar, 1);
        assert!(out.program.iter().all(|i| i.op == OpType::Scalar));
        assert!(out.report.vectorized_fraction < 1e-9);
    }

    #[test]
    fn mixed_kernel_reports_partial_fraction() {
        let mut k = Kernel::new("mixed");
        let a = k.declare_array(ArrayDecl::new("a", 8192, 32));
        let b = k.declare_array(ArrayDecl::new("b", 8192, 32));
        // Vectorizable loop.
        k.push_loop(Loop::new("v", 8192).with_statement(Statement::new(
            b.at(0),
            Expr::binary(OpType::Xor, Expr::load(a.at(0)), Expr::Const(7)),
        )));
        // Scalar loop of equal work.
        k.push_loop(
            Loop::new("s", 8192)
                .with_statement(Statement::new(
                    a.at(0),
                    Expr::binary(OpType::Add, Expr::load(a.at(0)), Expr::Const(1)),
                ))
                .with_complex_control_flow(),
        );
        let out = Vectorizer::default().vectorize(&k).unwrap();
        assert!((out.report.vectorized_fraction - 0.5).abs() < 1e-9);
        assert_eq!(out.report.loops_vectorized, 1);
        assert_eq!(out.report.loops_scalar, 1);
        assert!(out.report.scalar_insts > 0);
        assert!(out.report.vector_insts > 0);
    }

    #[test]
    fn strip_mined_loop_uses_reduced_width() {
        let mut k = Kernel::new("strided");
        let a = k.declare_array(ArrayDecl::new("a", 8192, 32));
        k.push_loop(Loop::new("strided", 8192).with_statement(Statement::new(
            a.at(0),
            Expr::binary(OpType::Add, Expr::load(a.at(-1024)), Expr::Const(1)),
        )));
        let out = Vectorizer::default().vectorize(&k).unwrap();
        assert_eq!(out.report.loops_partial, 1);
        assert!(out.program.iter().all(|i| i.lanes == 1024));
    }

    #[test]
    fn repeats_multiply_instruction_count_and_reuse_pages() {
        let mut k = vec_add_kernel(4096);
        k = {
            // Rebuild with repeat = 4.
            let mut k2 = Kernel::new("vec_add");
            let a = k2.declare_array(ArrayDecl::new("a", 4096, 32));
            let b = k2.declare_array(ArrayDecl::new("b", 4096, 32));
            let c = k2.declare_array(ArrayDecl::new("c", 4096, 32));
            k2.push_loop(
                Loop::new("add", 4096)
                    .with_statement(Statement::new(
                        c.at(0),
                        Expr::binary(OpType::Add, Expr::load(a.at(0)), Expr::load(b.at(0))),
                    ))
                    .with_repeat(4),
            );
            let _ = k;
            k2
        };
        let out = Vectorizer::default().vectorize(&k).unwrap();
        assert_eq!(out.program.len(), 4);
        // All four instructions read the same pages: average reuse is 4.
        assert!((out.program.average_reuse() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn metadata_carries_loop_and_strip_ids() {
        let out = Vectorizer::default()
            .vectorize(&vec_add_kernel(8192))
            .unwrap();
        let first = &out.program.insts()[0];
        let second = &out.program.insts()[1];
        assert_eq!(first.meta.loop_id, Some(0));
        assert_eq!(first.meta.strip_index, Some(0));
        assert_eq!(second.meta.strip_index, Some(1));
    }
}
