//! AES-256 encryption workload (CHStone-style).
//!
//! The data path is bitwise-heavy (AddRoundKey XORs, bit-sliced SubBytes,
//! MixColumns XOR chains) with one bulk permutation (ShiftRows) per element
//! per round, giving the ≈87% low / 13% medium operation mix of Table 3. The
//! structure re-reads the same state, round-key and S-box pages every round,
//! which produces the high (≈15) data reuse. The key schedule is a
//! control-heavy scalar region that caps the vectorizable fraction at ≈65%.

use conduit_types::OpType;
use conduit_vectorizer::{ArrayDecl, Expr, Kernel, Loop, Statement};

use crate::Scale;

/// Builds the AES-256 kernel.
pub fn kernel(scale: Scale) -> Kernel {
    let n = 32_768 * scale.data as u64; // 32-bit words of state
    let rounds = 14 * scale.steps as u64;

    let mut k = Kernel::new("AES");
    let state = k.declare_array(ArrayDecl::new("state", n, 32));
    let round_keys = k.declare_array(ArrayDecl::new("round_keys", n, 32));
    let sbox_masks = k.declare_array(ArrayDecl::new("sbox_masks", n, 32));

    // One AES round per element, written as a linear chain so that each
    // intermediate value is produced and consumed exactly once. SubBytes is
    // implemented bit-sliced (AND/XOR/NOT against precomputed mask words), as
    // in-flash AES implementations do, so the whole round stays within the
    // bulk-bitwise operation set:
    //   t1 = state ^ round_key                  (AddRoundKey)
    //   t2..t4 = bit-sliced SubBytes over t1    (AND/NOT/XOR with masks)
    //   t5 = ShiftRows                          (bulk copy / permutation)
    //   mixed = xtime XOR chain                 (MixColumns)
    let t1 = Expr::binary(
        OpType::Xor,
        Expr::load(state.at(0)),
        Expr::load(round_keys.at(0)),
    );
    let t2 = Expr::binary(OpType::And, t1, Expr::load(sbox_masks.at(0)));
    let t3 = Expr::unary(OpType::Not, t2);
    let t4 = Expr::binary(OpType::Xor, t3, Expr::load(sbox_masks.at(0)));
    let t5 = Expr::unary(OpType::Copy, t4);
    let x1 = Expr::binary(OpType::Xor, t5, Expr::load(round_keys.at(0)));
    let mixed = Expr::binary(OpType::Or, x1, Expr::load(state.at(0)));

    k.push_loop(
        Loop::new("rounds", n)
            .with_statement(Statement::new(state.at(0), mixed))
            .with_repeat(rounds),
    );

    // Key schedule: data-dependent rotations and byte substitutions with a
    // short recurrence — not auto-vectorizable. Sized so that roughly 35% of
    // the application's scalar work stays scalar.
    let vector_ops = 7 * n * rounds;
    let ks_ops_per_iter = 8u64;
    let ks_trip = (vector_ops as f64 * (0.35 / 0.65) / ks_ops_per_iter as f64) as u64;
    let ks_expr = deep_xor_chain(&round_keys, ks_ops_per_iter);
    k.push_loop(
        Loop::new("key_schedule", ks_trip.max(1))
            .with_statement(Statement::new(round_keys.at(0), ks_expr))
            .with_complex_control_flow(),
    );
    k
}

/// Builds an expression with `ops` operation nodes over the given array
/// (used only to size scalar regions; the exact shape does not matter since
/// scalar regions execute as opaque general-purpose code).
fn deep_xor_chain(array: &conduit_vectorizer::ArrayHandle, ops: u64) -> Expr {
    let mut e = Expr::load(array.at(0));
    for i in 0..ops {
        e = Expr::binary(OpType::Xor, e, Expr::load(array.at(i as i64 % 4)));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{characterize, Scale};
    use conduit_vectorizer::Vectorizer;

    #[test]
    fn aes_matches_table3_shape() {
        let out = Vectorizer::default()
            .vectorize(&kernel(Scale::test()))
            .unwrap();
        let p = characterize(&out.program);
        assert!(p.low_pct > 0.8, "low = {}", p.low_pct);
        assert!(p.med_pct > 0.08 && p.med_pct < 0.25, "med = {}", p.med_pct);
        assert!(p.high_pct < 0.01, "high = {}", p.high_pct);
        assert!(p.avg_reuse > 8.0, "reuse = {}", p.avg_reuse);
        assert!(
            (p.vectorizable_pct - 0.65).abs() < 0.1,
            "vectorizable = {}",
            p.vectorizable_pct
        );
    }
}
