//! # conduit-workloads
//!
//! The six data-intensive workloads of the Conduit evaluation (Table 3 of
//! the paper), expressed as loop kernels for the compile-time vectorizer:
//!
//! | Workload | Vectorizable % | Avg. reuse | low / medium / high ops |
//! |---|---|---|---|
//! | AES-256 | 65% | 15.2 | 87% / 13% / 0% |
//! | XOR filter | 16% | 2.0 | 1% / 98% / 1% |
//! | heat-3d | 95% | 16 | 0% / 60% / 40% |
//! | jacobi-1d | 95% | 3 | 0% / 67% / 33% |
//! | LLaMA2 inference (INT8) | 70% | 1.8 | 0% / 53% / 47% |
//! | LLM training (INT8) | 60% | 5.2 | 0% / 88% / 12% |
//!
//! Each generator builds a synthetic but structurally faithful kernel (same
//! operation mix, reuse behaviour and vectorizable fraction) at a
//! configurable [`Scale`], runs it through `conduit-vectorizer`, and returns
//! the resulting [`VectorProgram`]. [`characterize`] recomputes the Table 3
//! columns from a program so the benchmark harness can print paper-vs-
//! measured values.
//!
//! ## Example
//!
//! ```
//! use conduit_workloads::{characterize, Scale, Workload};
//!
//! let program = Workload::Jacobi1d.program(Scale::test())?;
//! let profile = characterize(&program);
//! assert!(profile.vectorizable_pct > 0.90);
//! assert!(profile.high_pct > 0.2 && profile.high_pct < 0.45);
//! # Ok::<(), conduit_types::ConduitError>(())
//! ```

mod aes;
mod llm;
mod profile;
mod stencil;
mod xor_filter;

pub use profile::{characterize, WorkloadProfile};

use conduit_types::{Result, VectorProgram};
use conduit_vectorizer::Kernel;

/// Controls how much data and how many iterations a workload generator
/// produces.
///
/// `Scale::test()` keeps programs small enough for unit tests;
/// `Scale::paper()` produces the instruction counts used by the benchmark
/// harness (thousands to tens of thousands of vector instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale {
    /// Multiplier on the number of data elements processed.
    pub data: u32,
    /// Multiplier on the number of iterations / time steps / layers.
    pub steps: u32,
}

impl Scale {
    /// A scale suitable for fast unit/integration tests.
    pub fn test() -> Self {
        Scale { data: 1, steps: 1 }
    }

    /// The scale used by the benchmark harness to regenerate the paper's
    /// figures.
    pub fn paper() -> Self {
        Scale { data: 8, steps: 2 }
    }

    /// A custom scale.
    pub fn new(data: u32, steps: u32) -> Self {
        Scale {
            data: data.max(1),
            steps: steps.max(1),
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::test()
    }
}

/// The six evaluated workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// AES-256 encryption (CHStone-style), bitwise-heavy with high reuse.
    Aes,
    /// XOR-filter membership structure construction + queries.
    XorFilter,
    /// heat-3d stencil (Polybench).
    Heat3d,
    /// jacobi-1d stencil (Polybench).
    Jacobi1d,
    /// LLaMA2-style INT8 transformer inference.
    LlamaInference,
    /// LLaMA2-style INT8 training step (forward + backward + update).
    LlmTraining,
}

impl Workload {
    /// All workloads in the order the paper's figures list them.
    pub const ALL: [Workload; 6] = [
        Workload::Aes,
        Workload::XorFilter,
        Workload::Heat3d,
        Workload::Jacobi1d,
        Workload::LlamaInference,
        Workload::LlmTraining,
    ];

    /// Display name matching the paper's figure axes.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Aes => "AES",
            Workload::XorFilter => "XOR Filter",
            Workload::Heat3d => "heat-3d",
            Workload::Jacobi1d => "jacobi-1d",
            Workload::LlamaInference => "LlaMA2 Inference",
            Workload::LlmTraining => "LLM Training",
        }
    }

    /// The paper's Table 3 reference characteristics for this workload:
    /// `(vectorizable fraction, average reuse, low, medium, high)`.
    pub fn paper_characteristics(self) -> (f64, f64, f64, f64, f64) {
        match self {
            Workload::Aes => (0.65, 15.2, 0.87, 0.13, 0.0),
            Workload::XorFilter => (0.16, 2.0, 0.01, 0.98, 0.01),
            Workload::Heat3d => (0.95, 16.0, 0.0, 0.60, 0.40),
            Workload::Jacobi1d => (0.95, 3.0, 0.0, 0.67, 0.33),
            Workload::LlamaInference => (0.70, 1.8, 0.0, 0.53, 0.47),
            Workload::LlmTraining => (0.60, 5.2, 0.0, 0.88, 0.12),
        }
    }

    /// Builds the scalar loop kernel for this workload.
    pub fn kernel(self, scale: Scale) -> Kernel {
        match self {
            Workload::Aes => aes::kernel(scale),
            Workload::XorFilter => xor_filter::kernel(scale),
            Workload::Heat3d => stencil::heat3d_kernel(scale),
            Workload::Jacobi1d => stencil::jacobi1d_kernel(scale),
            Workload::LlamaInference => llm::inference_kernel(scale),
            Workload::LlmTraining => llm::training_kernel(scale),
        }
    }

    /// Builds the kernel and runs it through the compile-time vectorizer.
    ///
    /// # Errors
    ///
    /// Propagates vectorizer errors (which indicate a bug in a generator).
    pub fn program(self, scale: Scale) -> Result<VectorProgram> {
        let kernel = self.kernel(scale);
        let out = conduit_vectorizer::Vectorizer::default().vectorize(&kernel)?;
        Ok(out.program)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_produces_a_valid_program() {
        for w in Workload::ALL {
            let program = w.program(Scale::test()).unwrap();
            assert!(!program.is_empty(), "{w} produced an empty program");
            assert!(
                program.validate().is_ok(),
                "{w} produced an invalid program"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = Workload::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), Workload::ALL.len());
        assert_eq!(Workload::Heat3d.to_string(), "heat-3d");
    }

    #[test]
    fn paper_characteristics_fractions_sum_to_one() {
        for w in Workload::ALL {
            let (_, _, low, med, high) = w.paper_characteristics();
            assert!((low + med + high - 1.0).abs() < 1e-6, "{w}");
        }
    }

    #[test]
    fn larger_scales_produce_more_work() {
        for w in [Workload::Heat3d, Workload::LlamaInference] {
            let small = w.program(Scale::test()).unwrap();
            let large = w.program(Scale::new(2, 2)).unwrap();
            assert!(large.len() > small.len(), "{w}");
        }
    }

    #[test]
    fn measured_characteristics_track_table3() {
        for w in Workload::ALL {
            let program = w.program(Scale::test()).unwrap();
            let p = characterize(&program);
            let (vec_pct, reuse, low, med, high) = w.paper_characteristics();
            assert!(
                (p.vectorizable_pct - vec_pct).abs() < 0.20,
                "{w}: vectorizable {:.2} vs paper {vec_pct:.2}",
                p.vectorizable_pct
            );
            assert!(
                (p.low_pct - low).abs() < 0.20
                    && (p.med_pct - med).abs() < 0.20
                    && (p.high_pct - high).abs() < 0.20,
                "{w}: mix {:.2}/{:.2}/{:.2} vs paper {low:.2}/{med:.2}/{high:.2}",
                p.low_pct,
                p.med_pct,
                p.high_pct
            );
            // Reuse should at least be ordered the same way (high-reuse
            // workloads measure high, streaming workloads measure low).
            if reuse >= 10.0 {
                assert!(p.avg_reuse > 4.0, "{w}: reuse {:.2}", p.avg_reuse);
            } else {
                assert!(p.avg_reuse < 10.0, "{w}: reuse {:.2}", p.avg_reuse);
            }
        }
    }
}
