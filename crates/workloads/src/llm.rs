//! LLaMA2-style INT8 transformer workloads: inference and training.
//!
//! Both are built from the dominant tensor kernels of `llama2.c` quantized to
//! INT8 (the paper quantizes because the SSD compute resources have no
//! native floating point): matrix–vector products for the
//! attention/FFN projections, element-wise residual additions, and (for
//! training) gradient accumulation and weight updates.
//!
//! * **Inference** streams each layer's weights exactly once (average reuse
//!   ≈1.8) and is roughly half multiplies, half additions (53%/47% in
//!   Table 3). About 30% of the work (sampling, KV-cache management, control)
//!   stays scalar.
//! * **Training** re-touches weights and gradients in the forward, backward
//!   and optimizer-update phases (reuse ≈5.2) and is dominated by additions
//!   (88% medium / 12% high), with ≈40% scalar work (data loading, loss,
//!   bookkeeping).

use conduit_types::OpType;
use conduit_vectorizer::{ArrayDecl, ArrayHandle, Expr, Kernel, Loop, Statement};

use crate::Scale;

fn load(a: ArrayHandle, off: i64) -> Expr {
    Expr::load(a.at(off))
}

fn add(a: Expr, b: Expr) -> Expr {
    Expr::binary(OpType::Add, a, b)
}

fn mul(a: Expr, b: Expr) -> Expr {
    Expr::binary(OpType::Mul, a, b)
}

fn push_scalar_control_loop(
    k: &mut Kernel,
    array: ArrayHandle,
    name: &str,
    vector_ops: u64,
    scalar_fraction: f64,
) {
    let ops_per_iter = 16u64;
    let ratio = scalar_fraction / (1.0 - scalar_fraction);
    let trip = (vector_ops as f64 * ratio / ops_per_iter as f64) as u64;
    let mut e = load(array, 0);
    for i in 0..ops_per_iter {
        e = add(e, load(array, i as i64 % 8));
    }
    k.push_loop(
        Loop::new(name, trip.max(1))
            .with_statement(Statement::new(array.at(0), e))
            .with_complex_control_flow(),
    );
}

/// Builds the LLaMA2 INT8 inference kernel.
pub fn inference_kernel(scale: Scale) -> Kernel {
    let hidden = 32_768 * scale.data as u64;
    let layers = 4 * scale.steps as u64;

    let mut k = Kernel::new("LlaMA2 Inference");
    let x = k.declare_array(ArrayDecl::new("activations", hidden, 8));
    let out = k.declare_array(ArrayDecl::new("out", hidden, 8));

    let mut vector_ops = 0u64;
    for layer in 0..layers {
        // Eight projection matrices per transformer block (Q, K, V, O and
        // the four FFN tiles), each streamed exactly once.
        let weights: Vec<ArrayHandle> = (0..8)
            .map(|w| k.declare_array(ArrayDecl::new(format!("w{layer}_{w}"), hidden, 8)))
            .collect();
        // out[i] = Σ_k w_k[i] * x[i]  (a blocked INT8 mat-vec slice):
        // 8 multiplies + 7 additions per element → 47% high / 53% medium.
        let partial = |a: ArrayHandle, b: ArrayHandle| {
            add(mul(load(a, 0), load(x, 0)), mul(load(b, 0), load(x, 0)))
        };
        let acc = add(
            add(
                partial(weights[0], weights[1]),
                partial(weights[2], weights[3]),
            ),
            add(
                partial(weights[4], weights[5]),
                partial(weights[6], weights[7]),
            ),
        );
        k.push_loop(
            Loop::new(format!("layer{layer}_matvec"), hidden)
                .with_statement(Statement::new(out.at(0), acc)),
        );
        vector_ops += 15 * hidden;
    }

    // Sampling, KV-cache bookkeeping and other control-heavy host-style code.
    push_scalar_control_loop(&mut k, out, "sampling_control", vector_ops, 0.30);
    k
}

/// Builds the LLaMA2 INT8 training-step kernel.
pub fn training_kernel(scale: Scale) -> Kernel {
    let hidden = 32_768 * scale.data as u64;
    let layers = 4 * scale.steps as u64;
    let batches = 2u64;

    let mut k = Kernel::new("LLM Training");
    let x = k.declare_array(ArrayDecl::new("activations", hidden, 8));

    let mut vector_ops = 0u64;
    for layer in 0..layers {
        let w = k.declare_array(ArrayDecl::new(format!("w{layer}"), hidden, 8));
        let g = k.declare_array(ArrayDecl::new(format!("grad{layer}"), hidden, 8));
        let d = k.declare_array(ArrayDecl::new(format!("delta{layer}"), hidden, 8));
        let act = k.declare_array(ArrayDecl::new(format!("act{layer}"), hidden, 8));

        // Forward: act = w*x + x (projection + residual) — 1 mul, 2 adds.
        let forward = add(add(mul(load(w, 0), load(x, 0)), load(x, 0)), load(x, 0));
        // Backward: g = g + (d + act) + d — pure accumulation, 3 adds.
        let backward = add(add(load(g, 0), add(load(d, 0), load(act, 0))), load(d, 0));
        // Optimizer update: w = w + (g + d) — 2 adds.
        let update = add(load(w, 0), add(load(g, 0), load(d, 0)));
        // Delta propagation: d = (d + x) + (g + act) — 3 adds.
        let delta = add(add(load(d, 0), load(x, 0)), add(load(g, 0), load(act, 0)));

        k.push_loop(
            Loop::new(format!("layer{layer}_step"), hidden)
                .with_statement(Statement::new(act.at(0), forward))
                .with_statement(Statement::new(g.at(0), backward))
                .with_statement(Statement::new(w.at(0), update))
                .with_statement(Statement::new(d.at(0), delta))
                .with_repeat(batches),
        );
        vector_ops += 11 * hidden * batches;
    }

    // Data loading, loss computation and other control-heavy work.
    push_scalar_control_loop(&mut k, x, "data_and_loss", vector_ops, 0.40);
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize;
    use conduit_vectorizer::Vectorizer;

    #[test]
    fn inference_matches_table3_shape() {
        let out = Vectorizer::default()
            .vectorize(&inference_kernel(Scale::test()))
            .unwrap();
        let p = characterize(&out.program);
        assert!(p.low_pct < 0.01);
        assert!((p.med_pct - 0.53).abs() < 0.1, "med = {}", p.med_pct);
        assert!((p.high_pct - 0.47).abs() < 0.1, "high = {}", p.high_pct);
        assert!(p.avg_reuse < 5.0, "reuse = {}", p.avg_reuse);
        assert!(
            (p.vectorizable_pct - 0.70).abs() < 0.1,
            "vectorizable = {}",
            p.vectorizable_pct
        );
    }

    #[test]
    fn training_matches_table3_shape() {
        let out = Vectorizer::default()
            .vectorize(&training_kernel(Scale::test()))
            .unwrap();
        let p = characterize(&out.program);
        assert!(p.low_pct < 0.01);
        assert!((p.med_pct - 0.88).abs() < 0.1, "med = {}", p.med_pct);
        assert!((p.high_pct - 0.12).abs() < 0.1, "high = {}", p.high_pct);
        assert!(
            p.avg_reuse > 2.0 && p.avg_reuse < 12.0,
            "reuse = {}",
            p.avg_reuse
        );
        assert!(
            (p.vectorizable_pct - 0.60).abs() < 0.1,
            "vectorizable = {}",
            p.vectorizable_pct
        );
    }

    #[test]
    fn training_reuses_weights_more_than_inference() {
        let inf = Vectorizer::default()
            .vectorize(&inference_kernel(Scale::test()))
            .unwrap();
        let tr = Vectorizer::default()
            .vectorize(&training_kernel(Scale::test()))
            .unwrap();
        assert!(characterize(&tr.program).avg_reuse > characterize(&inf.program).avg_reuse);
    }

    #[test]
    fn inference_has_thousands_of_instructions_at_paper_scale() {
        let out = Vectorizer::default()
            .vectorize(&inference_kernel(Scale::paper()))
            .unwrap();
        assert!(out.program.len() > 5_000, "len = {}", out.program.len());
    }
}
