//! Workload characterization (the measured version of Table 3).

use std::collections::HashMap;

use conduit_types::{LatencyClass, OpType, VectorProgram};

/// Measured characteristics of a vectorized workload, mirroring the columns
/// of Table 3 in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload (program) name.
    pub name: String,
    /// Fraction of the application's scalar work covered by SIMD
    /// instructions ("Vectorizable Code %").
    pub vectorizable_pct: f64,
    /// Average number of vector operations that consume each distinct data
    /// page before it is replaced ("Avg. Reuse").
    pub avg_reuse: f64,
    /// Fraction of vector operations in the low-latency class (bitwise,
    /// shifts).
    pub low_pct: f64,
    /// Fraction in the medium-latency class (add, predication, copies).
    pub med_pct: f64,
    /// Fraction in the high-latency class (multiply, divide, reductions).
    pub high_pct: f64,
    /// Number of vector (non-scalar-region) instructions.
    pub vector_instructions: usize,
    /// Number of scalar-region instructions.
    pub scalar_instructions: usize,
    /// Distinct logical pages touched.
    pub footprint_pages: usize,
}

/// Computes the Table 3 characteristics of a vectorized program.
///
/// The latency-class mix is computed over the *vector* instructions (the
/// operations eligible for offloading); scalar regions are reported
/// separately. Data reuse is computed over page operands only, because
/// SSA-style intermediate results are by construction consumed exactly once
/// and would not say anything about data-movement behaviour.
pub fn characterize(program: &VectorProgram) -> WorkloadProfile {
    let mut low = 0usize;
    let mut med = 0usize;
    let mut high = 0usize;
    let mut scalar = 0usize;
    let mut page_uses: HashMap<u64, u64> = HashMap::new();

    for inst in program.iter() {
        if inst.op == OpType::Scalar {
            scalar += 1;
        } else {
            match inst.op.latency_class() {
                LatencyClass::Low => low += 1,
                LatencyClass::Medium => med += 1,
                LatencyClass::High => high += 1,
            }
        }
        for page in inst.src_pages() {
            *page_uses.entry(page.index()).or_insert(0) += 1;
        }
    }

    let vector_total = (low + med + high).max(1) as f64;
    let avg_reuse = if page_uses.is_empty() {
        0.0
    } else {
        page_uses.values().sum::<u64>() as f64 / page_uses.len() as f64
    };

    WorkloadProfile {
        name: program.name().to_string(),
        vectorizable_pct: program.vectorized_fraction,
        avg_reuse,
        low_pct: low as f64 / vector_total,
        med_pct: med as f64 / vector_total,
        high_pct: high as f64 / vector_total,
        vector_instructions: low + med + high,
        scalar_instructions: scalar,
        footprint_pages: program.footprint_pages().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conduit_types::{Operand, VectorInst};

    #[test]
    fn empty_program_profile_is_zeroed() {
        let p = characterize(&VectorProgram::new("empty"));
        assert_eq!(p.vector_instructions, 0);
        assert_eq!(p.avg_reuse, 0.0);
        assert_eq!(p.footprint_pages, 0);
    }

    #[test]
    fn mix_and_reuse_are_computed_over_the_right_populations() {
        let mut prog = VectorProgram::new("p");
        // Two vector instructions re-reading page 0, one scalar region.
        let a = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(1));
        prog.push_binary(OpType::Mul, Operand::result(a), Operand::page(0));
        prog.push(VectorInst::unary(2, OpType::Scalar, Operand::page(2)));
        prog.vectorized_fraction = 0.5;

        let p = characterize(&prog);
        assert_eq!(p.vector_instructions, 2);
        assert_eq!(p.scalar_instructions, 1);
        assert!((p.low_pct - 0.5).abs() < 1e-9);
        assert!((p.high_pct - 0.5).abs() < 1e-9);
        assert_eq!(p.med_pct, 0.0);
        // Pages: 0 used twice, 1 once, 2 once → mean 4/3.
        assert!((p.avg_reuse - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.footprint_pages, 3);
        assert!((p.vectorizable_pct - 0.5).abs() < 1e-9);
    }
}
