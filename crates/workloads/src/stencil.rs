//! Polybench stencil workloads: heat-3d and jacobi-1d.
//!
//! Both are almost fully vectorizable (≈95% in Table 3, the remainder being
//! boundary handling), have no bitwise work, and mix additions
//! (medium-latency) with multiplications by stencil coefficients
//! (high-latency). heat-3d iterates many time steps over the same grid
//! (average reuse ≈16); jacobi-1d uses few time steps (reuse ≈3).

use conduit_types::OpType;
use conduit_vectorizer::{ArrayDecl, ArrayHandle, Expr, Kernel, Loop, Statement};

use crate::Scale;

/// Distance (in elements) between neighbouring stencil points along the
/// "slow" axis; chosen to be one 4 KiB page of 32-bit elements so that
/// neighbour reads touch adjacent logical pages, as a linearized 3-D grid
/// does.
const PLANE_STRIDE: i64 = 1_024;

fn mul_c(a: Expr) -> Expr {
    Expr::binary(OpType::Mul, a, Expr::Const(13))
}

fn add(a: Expr, b: Expr) -> Expr {
    Expr::binary(OpType::Add, a, b)
}

fn load(a: ArrayHandle, offset: i64) -> Expr {
    Expr::load(a.at(offset))
}

/// Adds the small scalar boundary-handling loop that keeps the vectorizable
/// fraction at ≈95%.
fn push_boundary_loop(k: &mut Kernel, grid: ArrayHandle, vector_ops: u64) {
    let ops_per_iter = 4u64;
    let trip = (vector_ops as f64 * (0.05 / 0.95) / ops_per_iter as f64) as u64;
    let mut e = load(grid, 0);
    for i in 0..ops_per_iter {
        e = add(e, load(grid, i as i64));
    }
    k.push_loop(
        Loop::new("boundary", trip.max(1))
            .with_statement(Statement::new(grid.at(0), e))
            .with_complex_control_flow(),
    );
}

/// Builds the heat-3d kernel.
pub fn heat3d_kernel(scale: Scale) -> Kernel {
    let n = 32_768 * scale.data as u64;
    let tsteps = 16 * scale.steps as u64;

    let mut k = Kernel::new("heat-3d");
    let a = k.declare_array(ArrayDecl::new("A", n, 32));
    let b = k.declare_array(ArrayDecl::new("B", n, 32));

    // B[i] = c*A[i-S] + c*A[i] + c*A[i+S] + A[i] + A[i-S] + A[i+S]
    // (3 multiplies, 5 additions per point: the 60%/40% medium/high mix).
    let weighted = add(
        add(mul_c(load(a, -PLANE_STRIDE)), mul_c(load(a, 0))),
        mul_c(load(a, PLANE_STRIDE)),
    );
    let unweighted = add(
        add(load(a, 0), load(a, -PLANE_STRIDE)),
        load(a, PLANE_STRIDE),
    );
    let stencil = add(weighted, unweighted);

    k.push_loop(
        Loop::new("time_steps", n)
            .with_statement(Statement::new(b.at(0), stencil))
            .with_repeat(tsteps),
    );

    let vector_ops = 8 * n * tsteps;
    push_boundary_loop(&mut k, a, vector_ops);
    k
}

/// Builds the jacobi-1d kernel.
pub fn jacobi1d_kernel(scale: Scale) -> Kernel {
    let n = 65_536 * scale.data as u64;
    let tsteps = 3 * scale.steps as u64;

    let mut k = Kernel::new("jacobi-1d");
    let a = k.declare_array(ArrayDecl::new("A", n, 32));
    let b = k.declare_array(ArrayDecl::new("B", n, 32));

    // B[i] = c * (A[i-S] + A[i] + A[i+S]); A[i] = c * (B[i-S] + B[i] + B[i+S])
    let sweep_ab = Expr::binary(
        OpType::Mul,
        add(
            add(load(a, -PLANE_STRIDE), load(a, 0)),
            load(a, PLANE_STRIDE),
        ),
        Expr::Const(11),
    );
    let sweep_ba = Expr::binary(
        OpType::Mul,
        add(
            add(load(b, -PLANE_STRIDE), load(b, 0)),
            load(b, PLANE_STRIDE),
        ),
        Expr::Const(11),
    );

    k.push_loop(
        Loop::new("time_steps", n)
            .with_statement(Statement::new(b.at(0), sweep_ab))
            .with_statement(Statement::new(a.at(0), sweep_ba))
            .with_repeat(tsteps),
    );

    let vector_ops = 8 * n * tsteps;
    push_boundary_loop(&mut k, a, vector_ops);
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize;
    use conduit_vectorizer::Vectorizer;

    #[test]
    fn heat3d_matches_table3_shape() {
        let out = Vectorizer::default()
            .vectorize(&heat3d_kernel(Scale::test()))
            .unwrap();
        let p = characterize(&out.program);
        assert!(p.low_pct < 0.01);
        assert!((p.med_pct - 0.60).abs() < 0.1, "med = {}", p.med_pct);
        assert!((p.high_pct - 0.40).abs() < 0.1, "high = {}", p.high_pct);
        assert!(p.avg_reuse > 8.0, "reuse = {}", p.avg_reuse);
        assert!(p.vectorizable_pct > 0.9);
    }

    #[test]
    fn jacobi1d_matches_table3_shape() {
        let out = Vectorizer::default()
            .vectorize(&jacobi1d_kernel(Scale::test()))
            .unwrap();
        let p = characterize(&out.program);
        assert!(p.low_pct < 0.01);
        assert!((p.med_pct - 0.67).abs() < 0.12, "med = {}", p.med_pct);
        assert!((p.high_pct - 0.33).abs() < 0.12, "high = {}", p.high_pct);
        assert!(p.avg_reuse < 12.0, "reuse = {}", p.avg_reuse);
        assert!(p.vectorizable_pct > 0.9);
    }

    #[test]
    fn heat3d_reuses_data_more_than_jacobi() {
        let heat = Vectorizer::default()
            .vectorize(&heat3d_kernel(Scale::test()))
            .unwrap();
        let jacobi = Vectorizer::default()
            .vectorize(&jacobi1d_kernel(Scale::test()))
            .unwrap();
        assert!(characterize(&heat.program).avg_reuse > characterize(&jacobi.program).avg_reuse);
    }
}
