//! XOR-filter workload (probabilistic membership structure).
//!
//! Filter *construction* uses a peeling algorithm whose control flow is
//! data-dependent and therefore stays scalar — that is why only ≈16% of the
//! code vectorizes (Table 3). The vectorizable part is the query path: three
//! table lookups combined and compared against the key fingerprint, which is
//! almost entirely medium-latency work with a sliver of low-latency XOR and
//! high-latency multiply from hash finalization.

use conduit_types::OpType;
use conduit_vectorizer::{ArrayDecl, Expr, Kernel, Loop, Statement};

use crate::Scale;

/// Minimal deterministic PRNG (splitmix64) so the workload generator needs
/// no external crates; only used to derive the three hash-slot offsets.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

/// Builds the XOR-filter kernel.
pub fn kernel(scale: Scale) -> Kernel {
    let n = 65_536 * scale.data as u64; // number of queried keys
    let queries = scale.steps as u64;

    let mut k = Kernel::new("XOR Filter");
    let keys = k.declare_array(ArrayDecl::new("keys", n, 32));
    let table = k.declare_array(ArrayDecl::new("table", n, 32));
    let result = k.declare_array(ArrayDecl::new("result", n, 32));

    // Deterministically seeded hash offsets (the three slot positions).
    let mut rng = SplitMix64(0x0be5_11fe);
    let offsets: [i64; 3] = [
        rng.gen_range(0, 128),
        rng.gen_range(128, 512),
        rng.gen_range(512, 1024),
    ];

    // Query: fingerprint(key) == T[h0] + T[h1] + T[h2] (membership test).
    let slots = Expr::binary(
        OpType::Add,
        Expr::binary(
            OpType::Add,
            Expr::binary(
                OpType::Lookup,
                Expr::load(table.at(offsets[0])),
                Expr::load(keys.at(0)),
            ),
            Expr::binary(
                OpType::Lookup,
                Expr::load(table.at(offsets[1])),
                Expr::load(keys.at(0)),
            ),
        ),
        Expr::binary(
            OpType::Lookup,
            Expr::load(table.at(offsets[2])),
            Expr::load(keys.at(0)),
        ),
    );
    let query = Expr::binary(OpType::CmpEq, slots, Expr::load(keys.at(0)));
    k.push_loop(
        Loop::new("queries", n)
            .with_statement(Statement::new(result.at(0), query))
            .with_repeat(queries),
    );

    // Hash finalization for a small fraction of keys (rehash path): one
    // multiply and one XOR — the 1%/1% high/low sliver of Table 3.
    let finalize = Expr::binary(
        OpType::Xor,
        Expr::binary(
            OpType::Mul,
            Expr::load(keys.at(0)),
            Expr::Const(0x9E37_79B1),
        ),
        Expr::load(keys.at(0)),
    );
    k.push_loop(
        Loop::new("hash_finalize", (n / 24).max(4_096))
            .with_statement(Statement::new(result.at(0), finalize))
            .with_repeat(queries),
    );

    // Construction (peeling): data-dependent control flow, scalar. Sized so
    // that roughly 84% of the application's work stays scalar.
    let vector_ops = (6 * n + 2 * (n / 24).max(4_096)) * queries;
    let ops_per_iter = 8u64;
    let trip = (vector_ops as f64 * (0.84 / 0.16) / ops_per_iter as f64) as u64;
    let mut peel = Expr::load(table.at(0));
    for i in 0..ops_per_iter {
        peel = Expr::binary(OpType::Add, peel, Expr::load(table.at(i as i64)));
    }
    k.push_loop(
        Loop::new("construct_peeling", trip.max(1))
            .with_statement(Statement::new(table.at(0), peel))
            .with_complex_control_flow(),
    );
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize;
    use conduit_vectorizer::Vectorizer;

    #[test]
    fn xor_filter_matches_table3_shape() {
        let out = Vectorizer::default()
            .vectorize(&kernel(Scale::test()))
            .unwrap();
        let p = characterize(&out.program);
        assert!(p.med_pct > 0.85, "med = {}", p.med_pct);
        assert!(p.low_pct < 0.1, "low = {}", p.low_pct);
        assert!(p.high_pct < 0.1, "high = {}", p.high_pct);
        assert!(p.avg_reuse < 8.0, "reuse = {}", p.avg_reuse);
        assert!(
            (p.vectorizable_pct - 0.16).abs() < 0.1,
            "vectorizable = {}",
            p.vectorizable_pct
        );
    }
}
