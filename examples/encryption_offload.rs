//! In-flash acceleration of bulk encryption (the AES workload).
//!
//! AES is bitwise-heavy with high data reuse, which makes it the showcase
//! for in-flash processing: this example shows how Conduit routes almost all
//! of its instructions to the flash chips and what that does to the
//! execution-time breakdown (the Figure 4 story).
//!
//! Run with: `cargo run --release --example encryption_offload`

use conduit::{Policy, RunRequest, Session};
use conduit_types::{ConduitError, SsdConfig};
use conduit_workloads::{Scale, Workload};

fn main() -> Result<(), ConduitError> {
    let mut session = Session::builder(SsdConfig::default()).build();
    let id = session.register(Workload::Aes.program(Scale::new(2, 1))?)?;

    println!(
        "AES-256 bulk encryption, {} vector instructions",
        session.program(id).expect("just registered").len()
    );
    println!();
    println!("policy          time            compute%  hostDM%  internalDM%  flash%   IFP share");

    let cpu = session
        .submit(&RunRequest::new(id, Policy::HostCpu))?
        .summary;
    for policy in [
        Policy::HostCpu,
        Policy::IspOnly,
        Policy::FlashCosmos,
        Policy::DmOffloading,
        Policy::Conduit,
    ] {
        let report = session.submit(&RunRequest::new(id, policy))?.summary;
        let (compute, host_dm, internal_dm, flash) = report.breakdown.fractions();
        let (_, _, ifp, _) = report.offload_mix.fractions();
        println!(
            "{:<15} {:<15} {:>6.0}%  {:>6.0}%  {:>9.0}%  {:>6.0}%  {:>8.0}%",
            policy.to_string(),
            report.total_time.to_string(),
            compute * 100.0,
            host_dm * 100.0,
            internal_dm * 100.0,
            flash * 100.0,
            ifp * 100.0
        );
        if policy == Policy::Conduit {
            println!(
                "\nConduit vs CPU: {:.2}x faster, {:.0}% less energy",
                report.speedup_over(&cpu),
                (1.0 - report.energy_vs(&cpu)) * 100.0
            );
        }
    }
    Ok(())
}
