//! Run the LLaMA2-style INT8 inference workload through every offloading
//! policy and print a Figure 7-style comparison, plus the instruction→
//! resource placement mix of Figure 9.
//!
//! Run with: `cargo run --release --example llm_inference`

use conduit::{Policy, Workbench};
use conduit_types::{ConduitError, SsdConfig};
use conduit_workloads::{characterize, Scale, Workload};

fn main() -> Result<(), ConduitError> {
    let program = Workload::LlamaInference.program(Scale::new(2, 1))?;
    let profile = characterize(&program);
    println!(
        "workload: {} — {} vector instructions, {:.0}% vectorizable, avg reuse {:.1}",
        profile.name,
        profile.vector_instructions,
        profile.vectorizable_pct * 100.0,
        profile.avg_reuse
    );
    println!();

    let mut bench = Workbench::new(SsdConfig::default());
    let policies = [
        Policy::HostCpu,
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::AresFlash,
        Policy::DmOffloading,
        Policy::Conduit,
        Policy::Ideal,
    ];
    let reports = bench.compare(&program, &policies)?;
    let cpu = &reports[0];

    println!("policy          speedup vs CPU   energy vs CPU   ISP/PuD/IFP mix");
    for report in &reports {
        let (isp, pud, ifp, _) = report.offload_mix.fractions();
        println!(
            "{:<15} {:>8.2}x        {:>6.2}x         {:>3.0}% / {:>3.0}% / {:>3.0}%",
            report.policy.to_string(),
            report.speedup_over(cpu),
            report.energy_vs(cpu),
            isp * 100.0,
            pud * 100.0,
            ifp * 100.0
        );
    }
    Ok(())
}
