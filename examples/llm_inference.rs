//! Run the LLaMA2-style INT8 inference workload through every offloading
//! policy and print a Figure 7-style comparison, plus the instruction→
//! resource placement mix of Figure 9.
//!
//! Run with: `cargo run --release --example llm_inference`

use conduit::{Policy, RunRequest, Session};
use conduit_types::{ConduitError, SsdConfig};
use conduit_workloads::{characterize, Scale, Workload};

fn main() -> Result<(), ConduitError> {
    let program = Workload::LlamaInference.program(Scale::new(2, 1))?;
    let profile = characterize(&program);
    println!(
        "workload: {} — {} vector instructions, {:.0}% vectorizable, avg reuse {:.1}",
        profile.name,
        profile.vector_instructions,
        profile.vectorizable_pct * 100.0,
        profile.avg_reuse
    );
    println!();

    let mut session = Session::builder(SsdConfig::default()).build();
    let id = session.register(program)?;
    let policies = [
        Policy::HostCpu,
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::AresFlash,
        Policy::DmOffloading,
        Policy::Conduit,
        Policy::Ideal,
    ];
    // One batched submission: all eight policies simulate in parallel.
    let requests: Vec<RunRequest> = policies.iter().map(|&p| RunRequest::new(id, p)).collect();
    let outcomes = session.submit_batch(&requests)?;
    let cpu = outcomes[0].summary.clone();

    println!("policy          speedup vs CPU   energy vs CPU   ISP/PuD/IFP mix");
    for outcome in &outcomes {
        let report = &outcome.summary;
        let (isp, pud, ifp, _) = report.offload_mix.fractions();
        println!(
            "{:<15} {:>8.2}x        {:>6.2}x         {:>3.0}% / {:>3.0}% / {:>3.0}%",
            report.policy.to_string(),
            report.speedup_over(&cpu),
            report.energy_vs(&cpu),
            isp * 100.0,
            pud * 100.0,
            ifp * 100.0
        );
    }
    Ok(())
}
