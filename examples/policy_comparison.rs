//! Sweep every workload × every offloading policy and print the full
//! speedup matrix (the data behind Figures 5 and 7(a)), including the
//! geometric-mean column the paper reports.
//!
//! Each workload is vectorized once and registered in the `Session`; the
//! whole policy sweep for a workload is then submitted as **one batch**,
//! which fans out across CPU cores with results bit-identical to serial.
//!
//! Run with: `cargo run --release --example policy_comparison`

use conduit::{gmean, Policy, RunRequest, Session};
use conduit_types::{ConduitError, SsdConfig};
use conduit_workloads::{Scale, Workload};

fn main() -> Result<(), ConduitError> {
    let scale = Scale::test();
    let mut session = Session::builder(SsdConfig::default()).build();

    let policies = [
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::FlashCosmos,
        Policy::AresFlash,
        Policy::BwOffloading,
        Policy::DmOffloading,
        Policy::Conduit,
        Policy::Ideal,
    ];

    print!("{:<16}", "workload");
    for p in policies {
        print!("{:>15}", p.to_string());
    }
    println!();

    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for workload in Workload::ALL {
        let id = session.register(workload.program(scale)?)?;
        // The CPU baseline plus every policy, submitted as one parallel
        // batch.
        let requests: Vec<RunRequest> = std::iter::once(RunRequest::new(id, Policy::HostCpu))
            .chain(policies.iter().map(|&p| RunRequest::new(id, p)))
            .collect();
        let outcomes = session.submit_batch(&requests)?;
        let cpu = &outcomes[0].summary;
        print!("{:<16}", workload.to_string());
        for (i, outcome) in outcomes[1..].iter().enumerate() {
            let speedup = outcome.summary.speedup_over(cpu);
            per_policy[i].push(speedup);
            print!("{:>14.2}x", speedup);
        }
        println!();
    }

    print!("{:<16}", "GMEAN");
    for speedups in &per_policy {
        print!("{:>14.2}x", gmean(speedups));
    }
    println!();
    Ok(())
}
