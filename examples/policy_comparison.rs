//! Sweep every workload × every offloading policy and print the full
//! speedup matrix (the data behind Figures 5 and 7(a)), including the
//! geometric-mean column the paper reports.
//!
//! Run with: `cargo run --release --example policy_comparison`

use conduit::{gmean, Policy, Workbench};
use conduit_types::{ConduitError, SsdConfig};
use conduit_workloads::{Scale, Workload};

fn main() -> Result<(), ConduitError> {
    let scale = Scale::test();
    let mut bench = Workbench::new(SsdConfig::default());

    let policies = [
        Policy::HostGpu,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::FlashCosmos,
        Policy::AresFlash,
        Policy::BwOffloading,
        Policy::DmOffloading,
        Policy::Conduit,
        Policy::Ideal,
    ];

    print!("{:<16}", "workload");
    for p in policies {
        print!("{:>15}", p.to_string());
    }
    println!();

    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for workload in Workload::ALL {
        let program = workload.program(scale)?;
        let cpu = bench.run(&program, Policy::HostCpu)?;
        print!("{:<16}", workload.to_string());
        for (i, policy) in policies.iter().enumerate() {
            let report = bench.run(&program, *policy)?;
            let speedup = report.speedup_over(&cpu);
            per_policy[i].push(speedup);
            print!("{:>14.2}x", speedup);
        }
        println!();
    }

    print!("{:<16}", "GMEAN");
    for speedups in &per_policy {
        print!("{:>14.2}x", gmean(speedups));
    }
    println!();
    Ok(())
}
