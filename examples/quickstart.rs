//! Quickstart: vectorize a tiny hand-written kernel, register it in a
//! `Session`, and run it on the simulated SSD under Conduit, comparing
//! against the host-CPU baseline.
//!
//! Run with: `cargo run --example quickstart`

use conduit::{Policy, RunRequest, Session};
use conduit_types::{ConduitError, OpType, SsdConfig};
use conduit_vectorizer::{ArrayDecl, Expr, Kernel, Loop, Statement, Vectorizer};

fn main() -> Result<(), ConduitError> {
    // 1. Write the application as an ordinary scalar loop kernel:
    //    for i in 0..65536 { c[i] = (a[i] ^ b[i]) + a[i]; }
    let mut kernel = Kernel::new("quickstart");
    let a = kernel.declare_array(ArrayDecl::new("a", 65_536, 32));
    let b = kernel.declare_array(ArrayDecl::new("b", 65_536, 32));
    let c = kernel.declare_array(ArrayDecl::new("c", 65_536, 32));
    kernel.push_loop(Loop::new("body", 65_536).with_statement(Statement::new(
        c.at(0),
        Expr::binary(
            OpType::Add,
            Expr::binary(OpType::Xor, Expr::load(a.at(0)), Expr::load(b.at(0))),
            Expr::load(a.at(0)),
        ),
    )));

    // 2. Compile-time stage: auto-vectorize into page-aligned SIMD
    //    instructions with embedded offloading metadata.
    let out = Vectorizer::default().vectorize(&kernel)?;
    println!(
        "vectorized `{}`: {} vector instructions, {:.0}% of the work vectorized",
        out.program.name(),
        out.program.len(),
        out.report.vectorized_fraction * 100.0
    );

    // 3. Runtime stage: register the program once, then submit runs. The
    //    registry means the vectorizer never runs again for this program —
    //    a server would even persist it across processes with
    //    `session.export_registry()`.
    let mut session = Session::builder(SsdConfig::default()).build();
    let id = session.register(out.program)?;
    let cpu = session
        .submit(&RunRequest::new(id, Policy::HostCpu))?
        .summary;
    let conduit = session
        .submit(&RunRequest::new(id, Policy::Conduit))?
        .summary;

    println!();
    println!("policy        time           energy         offload mix (ISP/PuD/IFP/host)");
    for report in [&cpu, &conduit] {
        let (isp, pud, ifp, host) = report.offload_mix.fractions();
        println!(
            "{:<13} {:<14} {:<14} {:.0}% / {:.0}% / {:.0}% / {:.0}%",
            report.policy.to_string(),
            report.total_time.to_string(),
            report.total_energy.to_string(),
            isp * 100.0,
            pud * 100.0,
            ifp * 100.0,
            host * 100.0
        );
    }
    println!();
    println!(
        "Conduit speedup over CPU: {:.2}x, energy reduction: {:.0}%, p99 latency {}",
        conduit.speedup_over(&cpu),
        (1.0 - conduit.energy_vs(&cpu)) * 100.0,
        conduit.percentile(0.99)
    );
    Ok(())
}
