//! Quickstart: vectorize a tiny hand-written kernel and run it on the
//! simulated SSD under Conduit, comparing against the host-CPU baseline.
//!
//! Run with: `cargo run --example quickstart`

use conduit::{Policy, Workbench};
use conduit_types::{ConduitError, OpType, SsdConfig};
use conduit_vectorizer::{ArrayDecl, Expr, Kernel, Loop, Statement, Vectorizer};

fn main() -> Result<(), ConduitError> {
    // 1. Write the application as an ordinary scalar loop kernel:
    //    for i in 0..65536 { c[i] = (a[i] ^ b[i]) + a[i]; }
    let mut kernel = Kernel::new("quickstart");
    let a = kernel.declare_array(ArrayDecl::new("a", 65_536, 32));
    let b = kernel.declare_array(ArrayDecl::new("b", 65_536, 32));
    let c = kernel.declare_array(ArrayDecl::new("c", 65_536, 32));
    kernel.push_loop(Loop::new("body", 65_536).with_statement(Statement::new(
        c.at(0),
        Expr::binary(
            OpType::Add,
            Expr::binary(OpType::Xor, Expr::load(a.at(0)), Expr::load(b.at(0))),
            Expr::load(a.at(0)),
        ),
    )));

    // 2. Compile-time stage: auto-vectorize into page-aligned SIMD
    //    instructions with embedded offloading metadata.
    let out = Vectorizer::default().vectorize(&kernel)?;
    println!(
        "vectorized `{}`: {} vector instructions, {:.0}% of the work vectorized",
        out.program.name(),
        out.program.len(),
        out.report.vectorized_fraction * 100.0
    );

    // 3. Runtime stage: execute the program on the simulated SSD.
    let mut bench = Workbench::new(SsdConfig::default());
    let cpu = bench.run(&out.program, Policy::HostCpu)?;
    let conduit = bench.run(&out.program, Policy::Conduit)?;

    println!();
    println!("policy        time           energy         offload mix (ISP/PuD/IFP/host)");
    for report in [&cpu, &conduit] {
        let (isp, pud, ifp, host) = report.offload_mix.fractions();
        println!(
            "{:<13} {:<14} {:<14} {:.0}% / {:.0}% / {:.0}% / {:.0}%",
            report.policy.to_string(),
            report.total_time.to_string(),
            report.energy.total().to_string(),
            isp * 100.0,
            pud * 100.0,
            ifp * 100.0,
            host * 100.0
        );
    }
    println!();
    println!(
        "Conduit speedup over CPU: {:.2}x, energy reduction: {:.0}%",
        conduit.speedup_over(&cpu),
        (1.0 - conduit.energy_vs(&cpu)) * 100.0
    );
    Ok(())
}
