//! # conduit-repro
//!
//! Facade crate for the Conduit near-data-processing reproduction. It
//! re-exports every workspace crate under one roof so the repository-level
//! examples and integration tests (and downstream users who just want
//! "all of Conduit") need a single dependency.
//!
//! The individual crates are:
//!
//! * [`types`] — shared vocabulary (time, energy, instructions, config),
//! * [`flash`] / [`dram`] / [`ctrl`] — substrate compute/timing models,
//! * [`ftl`] — flash translation layer and lazy coherence,
//! * [`sim`] — the event-driven device model and contention timelines,
//! * [`core`] — the cost function, policies and runtime offloading engine,
//! * [`vectorizer`] — the compile-time loop auto-vectorization stage,
//! * [`workloads`] — the six evaluation workload generators,
//! * [`traffic`] — deterministic arrival-process generators, replayable
//!   traffic traces and tenant-mix descriptors,
//! * [`fleet`] — the fleet front-end: sharded sessions, rendezvous tenant
//!   routing, SLO-aware admission control and checkpoint-based work
//!   migration.

pub use conduit as core;
pub use conduit_ctrl as ctrl;
pub use conduit_dram as dram;
pub use conduit_flash as flash;
pub use conduit_fleet as fleet;
pub use conduit_ftl as ftl;
pub use conduit_sim as sim;
pub use conduit_traffic as traffic;
pub use conduit_types as types;
pub use conduit_vectorizer as vectorizer;
pub use conduit_workloads as workloads;
