//! Differential tests for the batched (strip-mined) run loop: the scalar
//! per-instruction loop is the reference implementation, and the batched
//! path — the default — must be bit-identical to it for every workload,
//! every policy, fresh and warm devices, serial and pooled submission.
//! `RunRequest::scalar` / `RunOptions::scalar` is the same escape hatch the
//! `CONDUIT_SCALAR=1` environment variable flips process-wide (CI runs the
//! whole perf-gate under both modes and diffs the output).

use std::collections::BTreeSet;

use conduit::{Policy, RunOptions, RunRequest, RuntimeEngine, Session, StripPlan};
use conduit_types::{
    DataLocation, LogicalPageId, OpType, Operand, SsdConfig, VectorInst, VectorProgram,
};
use conduit_workloads::{Scale, Workload};

#[test]
fn batched_path_matches_scalar_for_every_workload_and_policy() {
    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    for workload in Workload::ALL {
        let id = session
            .register(workload.program(Scale::test()).unwrap())
            .unwrap();
        for policy in Policy::ALL {
            let batched = session
                .submit(&RunRequest::new(id, policy).timeline(true))
                .unwrap();
            let scalar = session
                .submit(&RunRequest::new(id, policy).timeline(true).scalar())
                .unwrap();
            assert_eq!(
                batched, scalar,
                "{workload}/{policy}: batched outcome diverged from the scalar reference"
            );
        }
    }
}

#[test]
fn batched_path_matches_scalar_on_warm_devices() {
    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    let id = session
        .register(Workload::Jacobi1d.program(Scale::test()).unwrap())
        .unwrap();
    let warm_batched = session.create_device("warm-batched");
    let warm_scalar = session.create_device("warm-scalar");

    // Age both devices through the same request stream, one per mode. Every
    // round must agree — which also proves each round left the two devices'
    // FTL/coherence state identical for the next.
    for round in 0..3 {
        for policy in [Policy::Conduit, Policy::DmOffloading, Policy::Ideal] {
            let batched = session
                .submit(
                    &RunRequest::new(id, policy)
                        .on_device(warm_batched)
                        .timeline(true),
                )
                .unwrap();
            let scalar = session
                .submit(
                    &RunRequest::new(id, policy)
                        .on_device(warm_scalar)
                        .timeline(true)
                        .scalar(),
                )
                .unwrap();
            assert_eq!(
                batched, scalar,
                "round {round}/{policy}: warm-device outcome diverged"
            );
        }
    }
    assert_eq!(
        session.device_snapshot(warm_batched),
        session.device_snapshot(warm_scalar),
        "warm devices aged differently under the two paths"
    );
}

#[test]
fn batched_path_matches_scalar_under_the_thread_pool() {
    let mut session = Session::builder(SsdConfig::small_for_tests())
        .workers(4)
        .build();
    let mut requests = Vec::new();
    for workload in [Workload::Aes, Workload::LlamaInference] {
        let id = session
            .register(workload.program(Scale::test()).unwrap())
            .unwrap();
        for policy in [Policy::Conduit, Policy::DmOffloading, Policy::Ideal] {
            // Adjacent batched/scalar pairs of the same request.
            requests.push(RunRequest::new(id, policy).timeline(true));
            requests.push(RunRequest::new(id, policy).timeline(true).scalar());
        }
    }
    let pooled = session.submit_batch(&requests).unwrap();
    for (pair, chunk) in pooled.chunks(2).enumerate() {
        assert_eq!(
            chunk[0], chunk[1],
            "pair {pair}: pooled batched outcome diverged from pooled scalar"
        );
    }
    // And the pooled results match serial submission of the same requests.
    for (i, request) in requests.iter().enumerate() {
        assert_eq!(
            pooled[i],
            session.submit(request).unwrap(),
            "request {i}: pooled outcome diverged from serial"
        );
    }
}

/// Runs `program` on a fresh device under both paths and asserts equality;
/// returns the batched report.
fn differential(program: &VectorProgram, policy: Policy) -> conduit::RunReport {
    let cfg = SsdConfig::small_for_tests();
    let engine = RuntimeEngine::new(&cfg);
    let run = |scalar: bool| {
        let mut device = conduit_sim::SsdDevice::new(&cfg).unwrap();
        engine.prepare(&mut device, program).unwrap();
        let mut options = RunOptions::new(policy);
        if scalar {
            options = options.scalar();
        }
        engine.run(&mut device, program, &options).unwrap()
    };
    let batched = run(false);
    let scalar = run(true);
    assert_eq!(
        batched,
        scalar,
        "{}/{policy}: batched diverged from scalar",
        program.name()
    );
    batched
}

#[test]
fn single_instruction_programs_are_one_strip_and_match_scalar() {
    let mut prog = VectorProgram::new("one-inst");
    prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    let plan = StripPlan::plan(&prog, Policy::Conduit, conduit::CostFunction::conduit());
    assert_eq!(plan.strips().len(), 1);
    assert_eq!((plan.strips()[0].start, plan.strips()[0].len), (0, 1));
    for policy in Policy::ALL {
        let report = differential(&prog, policy);
        assert_eq!(report.instructions, 1);
    }
}

#[test]
fn fully_heterogeneous_programs_degenerate_to_unit_strips_and_match_scalar() {
    // Every consecutive pair differs in op (or shape): the planner must
    // produce only unit-length strips — the all-tails worst case.
    let mut prog = VectorProgram::new("hetero");
    for (k, op) in OpType::ALL.into_iter().enumerate() {
        prog.push(VectorInst::with_srcs(
            k as u32,
            op,
            (0..op.arity())
                .map(|s| Operand::page((k * 16 + s * 4) as u64))
                .collect(),
        ));
    }
    // And a same-op pair split by an elem_bits change, so shape (not just
    // op) boundaries are exercised too.
    let base = prog.len();
    let mut narrow = VectorInst::binary(
        base as u32,
        OpType::Add,
        Operand::page((base * 16) as u64),
        Operand::page((base * 16 + 4) as u64),
    );
    narrow.elem_bits = 8;
    prog.push(narrow);
    prog.push(VectorInst::binary(
        base as u32 + 1,
        OpType::Add,
        Operand::page((base * 16 + 8) as u64),
        Operand::page((base * 16 + 12) as u64),
    ));

    let plan = StripPlan::plan(&prog, Policy::Conduit, conduit::CostFunction::conduit());
    assert_eq!(plan.strips().len(), prog.len());
    assert!(plan.strips().iter().all(|s| s.len == 1));
    for policy in [
        Policy::Conduit,
        Policy::DmOffloading,
        Policy::Ideal,
        Policy::HostCpu,
        Policy::AresFlash,
    ] {
        differential(&prog, policy);
    }
}

#[test]
fn warm_coherence_state_flips_placement_mid_strip() {
    // Warm a device so that only the first instruction's operands are
    // DRAM-resident, then run one homogeneous three-instruction strip under
    // DM-Offloading: placement must change *inside* the strip (the plan
    // never pins dynamic decisions), and the batched path must still match
    // the scalar reference bit for bit.
    let cfg = SsdConfig::small_for_tests();
    let engine = RuntimeEngine::new(&cfg);

    let mut warm = VectorProgram::new("warmup");
    warm.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    let mut hot = VectorProgram::new("hot-strip");
    hot.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    hot.push_binary(OpType::Xor, Operand::page(8), Operand::page(12));
    hot.push_binary(OpType::Xor, Operand::page(16), Operand::page(20));

    let run = |scalar: bool| {
        let mut device = conduit_sim::SsdDevice::new(&cfg).unwrap();
        engine.prepare(&mut device, &warm).unwrap();
        engine.prepare(&mut device, &hot).unwrap();
        let mut warm_options = RunOptions::new(Policy::IspOnly);
        let mut hot_options = RunOptions::new(Policy::DmOffloading);
        if scalar {
            warm_options = warm_options.scalar();
            hot_options = hot_options.scalar();
        }
        // ISP executes out of DRAM: pages 0..8 become DRAM-resident.
        engine.run(&mut device, &warm, &warm_options).unwrap();
        assert_eq!(device.locate(LogicalPageId::new(0)), DataLocation::Dram);
        assert_eq!(device.locate(LogicalPageId::new(8)), DataLocation::Flash);
        engine.run(&mut device, &hot, &hot_options).unwrap()
    };

    let batched = run(false);
    let scalar = run(true);
    assert_eq!(batched, scalar, "warm mid-strip run diverged");

    // The whole hot program is one strip (same op and shape throughout) …
    let plan = StripPlan::plan(&hot, Policy::DmOffloading, conduit::CostFunction::conduit());
    assert_eq!(plan.strips().len(), 1);
    assert_eq!(plan.strips()[0].site, None);
    // … yet the warm coherence state forces more than one execution site
    // within it.
    let sites: BTreeSet<_> = batched
        .timeline
        .iter()
        .map(|e| format!("{:?}", e.site))
        .collect();
    assert!(
        sites.len() > 1,
        "expected a mid-strip placement change, got {sites:?}"
    );
}

// ---------------------------------------------------------------------
// The parallel (DAG-scheduled) evaluate/commit path. `RunRequest::
// sequential_strips` / `CONDUIT_SEQ_STRIPS=1` is its escape hatch, the
// same way `scalar` / `CONDUIT_SCALAR=1` gates the batched loop.
// ---------------------------------------------------------------------

#[test]
fn parallel_path_matches_scalar_for_every_workload_policy_and_pool_size() {
    let mut serial = Session::builder(SsdConfig::small_for_tests())
        .workers(1)
        .build();
    let serial_ids: Vec<_> = Workload::ALL
        .iter()
        .map(|w| serial.register(w.program(Scale::test()).unwrap()).unwrap())
        .collect();
    for workers in [2, 4, 8] {
        let mut session = Session::builder(SsdConfig::small_for_tests())
            .workers(workers)
            .build();
        for (wi, workload) in Workload::ALL.iter().enumerate() {
            let id = session
                .register(workload.program(Scale::test()).unwrap())
                .unwrap();
            for policy in Policy::ALL {
                let parallel = session
                    .submit(&RunRequest::new(id, policy).timeline(true))
                    .unwrap();
                let sequential = session
                    .submit(
                        &RunRequest::new(id, policy)
                            .timeline(true)
                            .sequential_strips(),
                    )
                    .unwrap();
                let scalar = session
                    .submit(&RunRequest::new(id, policy).timeline(true).scalar())
                    .unwrap();
                assert_eq!(
                    parallel, sequential,
                    "{workers} workers, {workload}/{policy}: parallel diverged from sequential strips"
                );
                assert_eq!(
                    parallel, scalar,
                    "{workers} workers, {workload}/{policy}: parallel diverged from scalar"
                );
                let lone = serial
                    .submit(&RunRequest::new(serial_ids[wi], policy).timeline(true))
                    .unwrap();
                assert_eq!(
                    parallel, lone,
                    "{workers} workers, {workload}/{policy}: parallel diverged from a serial session"
                );
            }
        }
    }
}

#[test]
fn parallel_path_matches_scalar_on_warm_devices_across_rounds() {
    let mut session = Session::builder(SsdConfig::small_for_tests())
        .workers(4)
        .build();
    let id = session
        .register(Workload::Jacobi1d.program(Scale::test()).unwrap())
        .unwrap();
    let dev_parallel = session.create_device("warm-parallel");
    let dev_sequential = session.create_device("warm-sequential");
    let dev_scalar = session.create_device("warm-scalar");

    // Age three devices through the same stream, one per mode. Every round
    // must agree — which also proves each round left all three devices'
    // FTL/coherence state identical for the next.
    for round in 0..3 {
        for policy in [Policy::Conduit, Policy::DmOffloading, Policy::Ideal] {
            let parallel = session
                .submit(
                    &RunRequest::new(id, policy)
                        .on_device(dev_parallel)
                        .timeline(true),
                )
                .unwrap();
            let sequential = session
                .submit(
                    &RunRequest::new(id, policy)
                        .on_device(dev_sequential)
                        .timeline(true)
                        .sequential_strips(),
                )
                .unwrap();
            let scalar = session
                .submit(
                    &RunRequest::new(id, policy)
                        .on_device(dev_scalar)
                        .timeline(true)
                        .scalar(),
                )
                .unwrap();
            assert_eq!(
                parallel, sequential,
                "round {round}/{policy}: warm parallel diverged from sequential strips"
            );
            assert_eq!(
                parallel, scalar,
                "round {round}/{policy}: warm parallel diverged from scalar"
            );
        }
    }
    let parallel_snapshot = session.device_snapshot(dev_parallel);
    assert_eq!(
        parallel_snapshot,
        session.device_snapshot(dev_sequential),
        "warm devices aged differently under parallel vs sequential strips"
    );
    assert_eq!(
        parallel_snapshot,
        session.device_snapshot(dev_scalar),
        "warm devices aged differently under parallel vs scalar"
    );
}

#[test]
fn parallel_run_reports_evaluator_diagnostics() {
    // Many independent same-shaped strips, split by op changes: every strip
    // is DAG-independent (no cross-strip results, no stores), so all of
    // them are speculation-eligible under Conduit.
    let mut prog = VectorProgram::new("diagnostics");
    for k in 0..24u64 {
        let op = if k % 2 == 0 { OpType::Xor } else { OpType::Add };
        prog.push_binary(op, Operand::page(k * 8), Operand::page(k * 8 + 4));
    }
    let mut session = Session::builder(SsdConfig::small_for_tests())
        .workers(4)
        .build();
    let id = session.register(prog).unwrap();
    let outcome = session
        .submit(&RunRequest::new(id, Policy::Conduit))
        .unwrap();
    let stats = outcome.summary.parallelism;
    // Every strip goes through the two-phase evaluator exactly once,
    // whether a worker or the committer evaluated it.
    assert_eq!(stats.evals(), 24, "one eval per strip: {stats:?}");
    // Placement speculation is deterministic (it only depends on the
    // program and the device models), and every strip here is eligible.
    assert_eq!(
        stats.speculation_hits + stats.speculation_misses,
        24,
        "every independent strip speculates: {stats:?}"
    );
    // The sequential and scalar paths never touch the evaluator.
    let sequential = session
        .submit(&RunRequest::new(id, Policy::Conduit).sequential_strips())
        .unwrap();
    assert_eq!(sequential.summary.parallelism.evals(), 0);
    let scalar = session
        .submit(&RunRequest::new(id, Policy::Conduit).scalar())
        .unwrap();
    assert_eq!(scalar.summary.parallelism.evals(), 0);
}

#[test]
fn l2p_miss_cadence_is_identical_in_every_mode_and_restarts_per_repeat() {
    // A deterministic L2P miss period of 4 (hit rate 0.75): in a run that
    // charges overheads every instruction bumps the lookup counter exactly
    // once, so misses land on global instruction indices 3, 7, 11, 15 —
    // regardless of strip boundaries and of which thread computed the
    // overhead.
    let mut cfg = SsdConfig::small_for_tests();
    cfg.l2p_cache_hit_rate = 0.75;
    let overheads = conduit::OverheadModel::new(&cfg);
    let mut expected = conduit::OverheadReport::default();
    for g in 1u64..=16 {
        expected.record(overheads.per_instruction(2, g.is_multiple_of(4)));
    }

    // Two strips (op change at instruction 10), so the cadence crosses a
    // strip boundary: the second strip's precomputed overheads must pick up
    // the counter mid-period, not restart it.
    let mut prog = VectorProgram::new("cadence");
    for k in 0..10u64 {
        prog.push_binary(OpType::Xor, Operand::page(k * 8), Operand::page(k * 8 + 4));
    }
    for k in 10..16u64 {
        prog.push_binary(OpType::Add, Operand::page(k * 8), Operand::page(k * 8 + 4));
    }

    let mut session = Session::builder(cfg).workers(4).build();
    let id = session.register(prog).unwrap();
    let parallel = session
        .submit(&RunRequest::new(id, Policy::Conduit))
        .unwrap();
    let sequential = session
        .submit(&RunRequest::new(id, Policy::Conduit).sequential_strips())
        .unwrap();
    let scalar = session
        .submit(&RunRequest::new(id, Policy::Conduit).scalar())
        .unwrap();
    assert_eq!(parallel.summary.overhead, expected, "parallel cadence");
    assert_eq!(sequential.summary.overhead, expected, "sequential cadence");
    assert_eq!(scalar.summary.overhead, expected, "scalar cadence");
    assert_eq!(parallel, sequential);
    assert_eq!(parallel, scalar);

    // The lookup counter is per run: across repeat boundaries the cadence
    // restarts (repeat 2 misses on the same in-run indices as repeat 1), in
    // every mode. The summary carries the final repeat's report, so a
    // counter leaking across repeats would shift its miss pattern and the
    // totals would differ.
    let warm_parallel = session.create_device("cadence-parallel");
    let warm_scalar = session.create_device("cadence-scalar");
    let repeated = session
        .submit(
            &RunRequest::new(id, Policy::Conduit)
                .on_device(warm_parallel)
                .repeat(3),
        )
        .unwrap();
    let repeated_scalar = session
        .submit(
            &RunRequest::new(id, Policy::Conduit)
                .on_device(warm_scalar)
                .repeat(3)
                .scalar(),
        )
        .unwrap();
    assert_eq!(
        repeated.summary.overhead, expected,
        "cadence must restart at each repeat boundary"
    );
    assert_eq!(repeated, repeated_scalar);
    assert_eq!(
        session.device_snapshot(warm_parallel),
        session.device_snapshot(warm_scalar)
    );
}
