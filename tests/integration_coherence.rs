//! Integration of the lazy coherence protocol with the device and the
//! runtime engine: pages modified by one compute resource must be flushed to
//! flash before another resource (or the host) consumes them, and never
//! otherwise.

use conduit::{Policy, RunRequest, Session};
use conduit_sim::SsdDevice;
use conduit_types::{
    DataLocation, Duration, LogicalPageId, OpType, Operand, Resource, SimTime, SsdConfig,
    VectorInst, VectorProgram,
};

fn pages(range: std::ops::Range<u64>) -> Vec<LogicalPageId> {
    range.map(LogicalPageId::new).collect()
}

#[test]
fn cross_resource_handoff_flushes_through_flash() {
    let cfg = SsdConfig::small_for_tests();
    let mut dev = SsdDevice::new(&cfg).unwrap();
    dev.map_pages(&pages(0..4), None).unwrap();
    let page = LogicalPageId::new(0);

    // PuD-SSD computes into the page.
    let w = dev
        .record_result_write(page, DataLocation::Dram, SimTime::ZERO)
        .unwrap();
    assert_eq!(dev.locate(page), DataLocation::Dram);

    // The controller core then needs it: a flush (flash program) plus a read
    // back up must happen, i.e. the handoff is much more expensive than a
    // DRAM-bus hop would be.
    let c = dev
        .ensure_at(page, DataLocation::CtrlSram, w.ready)
        .unwrap();
    assert!(c.breakdown.flash_array >= Duration::from_us(400.0));
    assert_eq!(dev.locate(page), DataLocation::CtrlSram);

    // Re-reading from the same place is free.
    let again = dev
        .ensure_at(page, DataLocation::CtrlSram, c.ready)
        .unwrap();
    assert_eq!(again.ready, c.ready);
}

#[test]
fn same_resource_rewrites_do_not_flush() {
    let cfg = SsdConfig::small_for_tests();
    let mut dev = SsdDevice::new(&cfg).unwrap();
    dev.map_pages(&pages(0..1), None).unwrap();
    let page = LogicalPageId::new(0);

    let mut at = SimTime::ZERO;
    for _ in 0..10 {
        let c = dev
            .record_result_write(page, DataLocation::Dram, at)
            .unwrap();
        at = c.ready;
    }
    // Ten repeated writes by the same owner only bump the version counter —
    // no flash programs, so no time advances beyond the first bookkeeping.
    let (_, flushes) = dev.ftl().coherence().traffic();
    assert_eq!(flushes, 0);
    assert_eq!(dev.ftl().coherence().version(page), 10);
    assert_eq!(dev.ftl().stats().rewrites, 0);
}

#[test]
fn producer_consumer_program_keeps_results_local_until_needed() {
    // i0 computes in DRAM-friendly fashion, i1 consumes the result with an
    // op only ISP can run, i2 stores. The engine must keep the data moving
    // without violating program order, and the coherence directory must end
    // up consistent.
    let mut prog = VectorProgram::new("handoff");
    let a = prog.push_binary(OpType::Add, Operand::page(0), Operand::page(4));
    let b = prog.push_binary(OpType::Div, Operand::result(a), Operand::Immediate(3));
    prog.push(
        VectorInst::binary(2, OpType::Xor, Operand::result(b), Operand::page(8))
            .store_to(LogicalPageId::new(12)),
    );

    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    let id = session.register(prog).unwrap();
    let outcome = session
        .submit(&RunRequest::new(id, Policy::Conduit).with_timeline())
        .unwrap();
    let report = &outcome.summary;
    assert_eq!(report.instructions, 3);
    // Division is ISP-only.
    assert!(report.offload_mix.isp >= 1);
    // The store's destination pages are tracked by the coherence directory
    // as dirty at some SSD location (lazy write-back, not yet in flash).
    assert!(report.total_time > Duration::ZERO);

    // Order is respected in the timeline.
    let t = &outcome.artifacts.expect("requested timeline").timeline;
    assert!(t[1].completed >= t[0].completed);
    assert!(t[2].completed >= t[1].completed);
}

#[test]
fn host_consumption_forces_writeback() {
    let cfg = SsdConfig::small_for_tests();
    let mut dev = SsdDevice::new(&cfg).unwrap();
    dev.map_pages(&pages(0..1), None).unwrap();
    let page = LogicalPageId::new(0);

    dev.record_result_write(page, DataLocation::CtrlSram, SimTime::ZERO)
        .unwrap();
    let c = dev
        .ensure_at(page, DataLocation::Host, SimTime::ZERO)
        .unwrap();
    // Dirty controller-SRAM data headed to the host goes through a flash
    // commit (lazy coherence trigger ii: result must be transferred to the
    // host) and then over the PCIe link.
    assert!(c.breakdown.host_data_movement > Duration::ZERO);
    assert!(c.breakdown.flash_array > Duration::ZERO);
}

#[test]
fn unsupported_op_on_restricted_resource_errors_cleanly() {
    let cfg = SsdConfig::small_for_tests();
    let mut dev = SsdDevice::new(&cfg).unwrap();
    dev.map_pages(&pages(0..8), None).unwrap();
    let err = dev
        .execute(
            Resource::PudSsd,
            OpType::Scalar,
            32,
            4096,
            &pages(0..1),
            SimTime::ZERO,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        conduit_types::ConduitError::UnsupportedOperation { .. }
    ));
}
