//! Determinism of the evaluation pipeline: the parallel harness fan-out must
//! be a pure wall-clock optimization — every `RunReport` it produces must be
//! bit-identical to the serial path, and repeated runs must be identical.

use conduit::Policy;
use conduit_bench::Harness;
use conduit_workloads::Workload;

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let mut serial = Harness::quick().with_parallel(false);
    // Force 4 workers so the threaded path is exercised even on single-CPU
    // CI hosts.
    let mut parallel = Harness::quick().with_workers(4);
    serial.prefetch_all();
    parallel.prefetch_all();
    for workload in Workload::ALL {
        for policy in Policy::ALL {
            let a = serial.report(workload, policy);
            let b = parallel.report(workload, policy);
            assert_eq!(
                a, b,
                "{workload}/{policy}: parallel report diverged from serial"
            );
        }
    }
}

#[test]
fn figures_are_identical_across_harness_modes() {
    let mut serial = Harness::quick().with_parallel(false);
    let mut parallel = Harness::quick().with_workers(4);
    assert_eq!(serial.fig7a(), parallel.fig7a());
    assert_eq!(serial.fig7b(), parallel.fig7b());
    assert_eq!(serial.fig8(), parallel.fig8());
    assert_eq!(serial.headline(), parallel.headline());
}

#[test]
fn repeated_sweeps_are_identical() {
    let mut first = Harness::quick();
    let mut second = Harness::quick();
    for workload in [Workload::Jacobi1d, Workload::XorFilter] {
        for policy in [
            Policy::HostCpu,
            Policy::DmOffloading,
            Policy::Conduit,
            Policy::Ideal,
        ] {
            assert_eq!(
                first.report(workload, policy),
                second.report(workload, policy),
                "{workload}/{policy}: simulation is not deterministic"
            );
        }
    }
}
