//! Determinism of the evaluation pipeline: parallel fan-out — whether via
//! the harness or via `Session::submit_batch` — must be a pure wall-clock
//! optimization: every outcome it produces must be bit-identical to the
//! serial path, and repeated runs must be identical.

use conduit::{Policy, RunOutcome, RunRequest, Session};
use conduit_bench::Harness;
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let mut serial = Harness::quick().with_parallel(false);
    // Force 4 workers so the threaded path is exercised even on single-CPU
    // CI hosts.
    let mut parallel = Harness::quick().with_workers(4);
    serial.prefetch_all();
    parallel.prefetch_all();
    for workload in Workload::ALL {
        for policy in Policy::ALL {
            let a = serial.report(workload, policy);
            let b = parallel.report(workload, policy);
            assert_eq!(
                a, b,
                "{workload}/{policy}: parallel outcome diverged from serial"
            );
        }
    }
}

#[test]
fn submit_batch_is_bit_identical_to_serial_submission() {
    let mut session = Session::builder(SsdConfig::small_for_tests())
        .workers(4)
        .build();
    let mut requests = Vec::new();
    for workload in [Workload::Jacobi1d, Workload::Aes, Workload::LlamaInference] {
        let id = session
            .register(workload.program(Scale::test()).unwrap())
            .unwrap();
        for policy in [Policy::HostCpu, Policy::DmOffloading, Policy::Conduit] {
            // Mix collection flags so both summary-only and artifact-carrying
            // runs cross the thread boundary.
            requests.push(RunRequest::new(id, policy).timeline(policy == Policy::Conduit));
        }
    }

    let batched = session.submit_batch(&requests).unwrap();
    let serial: Vec<RunOutcome> = requests
        .iter()
        .map(|r| session.submit(r).unwrap())
        .collect();
    assert_eq!(batched.len(), serial.len());
    for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
        assert_eq!(b, s, "request {i}: batched outcome diverged from serial");
    }

    // And a second batch of the same requests is identical again.
    assert_eq!(batched, session.submit_batch(&requests).unwrap());
}

#[test]
fn figures_are_identical_across_harness_modes() {
    let mut serial = Harness::quick().with_parallel(false);
    let mut parallel = Harness::quick().with_workers(4);
    assert_eq!(serial.fig7a(), parallel.fig7a());
    assert_eq!(serial.fig7b(), parallel.fig7b());
    assert_eq!(serial.fig8(), parallel.fig8());
    assert_eq!(serial.headline(), parallel.headline());
}

#[test]
fn repeated_sweeps_are_identical() {
    let mut first = Harness::quick();
    let mut second = Harness::quick();
    for workload in [Workload::Jacobi1d, Workload::XorFilter] {
        for policy in [
            Policy::HostCpu,
            Policy::DmOffloading,
            Policy::Conduit,
            Policy::Ideal,
        ] {
            assert_eq!(
                first.report(workload, policy),
                second.report(workload, policy),
                "{workload}/{policy}: simulation is not deterministic"
            );
        }
    }
}
