//! The device-pool Session API: named warm devices, per-device FIFO lanes,
//! stream clocks and serializable device checkpoints.
//!
//! Three properties are pinned down here:
//!
//! 1. **Per-device determinism**: a mixed batch across three warm devices
//!    plus fresh requests is bit-identical whether the lanes run in
//!    parallel on the thread pool or the whole batch runs serially on the
//!    calling thread.
//! 2. **Checkpoint fidelity**: exporting a device mid-stream, importing it
//!    into a fresh session and replaying the remainder matches the
//!    uninterrupted run exactly.
//! 3. **Format stability**: a committed golden checkpoint
//!    (`tests/golden/device_checkpoint_v1.bin`) pins the byte-exact
//!    encoding of a canonical aged device. If an intentional format change
//!    breaks `golden_file_pins_the_checkpoint_format`, bump
//!    `DEVICE_STATE_FORMAT_VERSION` / `DEVICE_CHECKPOINT_FORMAT_VERSION`
//!    and regenerate with:
//!
//!    ```text
//!    CONDUIT_REGEN_GOLDEN=1 cargo test --test integration_device_pool
//!    ```

use conduit::{DeviceHandle, Policy, ProgramId, RunOutcome, RunRequest, Session};
use conduit_types::{
    Duration, LogicalPageId, OpType, Operand, SsdConfig, VectorInst, VectorProgram,
};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("device_checkpoint_v1.bin")
}

/// A program whose store forces out-of-place writes on every run.
fn writer_program() -> VectorProgram {
    let mut prog = VectorProgram::new("writer");
    let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    prog.push(
        VectorInst::binary(1, OpType::Add, Operand::result(x), Operand::page(8))
            .store_to(LogicalPageId::new(12)),
    );
    prog
}

/// A second program touching different pages, so tenants' footprints
/// differ.
fn reader_program() -> VectorProgram {
    let mut prog = VectorProgram::new("reader");
    let a = prog.push_binary(OpType::And, Operand::page(16), Operand::page(20));
    prog.push_binary(OpType::Mul, Operand::result(a), Operand::page(24));
    prog
}

/// The canonical mixed batch: three tenants with interleaved multi-request
/// lanes, plus fresh requests fanned out alongside.
fn mixed_batch(
    writer: ProgramId,
    reader: ProgramId,
    a: DeviceHandle,
    b: DeviceHandle,
    c: DeviceHandle,
) -> Vec<RunRequest> {
    vec![
        RunRequest::new(writer, Policy::Conduit).on_device(a),
        RunRequest::new(reader, Policy::Conduit),
        RunRequest::new(writer, Policy::PudSsd).on_device(b),
        RunRequest::new(reader, Policy::IspOnly).on_device(c),
        RunRequest::new(writer, Policy::HostCpu).on_device(a),
        RunRequest::new(reader, Policy::Ideal),
        RunRequest::new(reader, Policy::Conduit).on_device(b),
        RunRequest::new(writer, Policy::Conduit).on_device(c),
        RunRequest::new(writer, Policy::PudSsd).on_device(a),
        RunRequest::new(reader, Policy::HostCpu),
    ]
}

fn pool_session(
    configure: impl FnOnce(conduit::SessionBuilder) -> conduit::SessionBuilder,
) -> Session {
    configure(Session::builder(SsdConfig::small_for_tests())).build()
}

#[test]
fn three_device_mixed_batch_is_bit_identical_to_serial_submission() {
    let run = |mut session: Session| -> (Vec<RunOutcome>, Vec<_>) {
        let writer = session.register(writer_program()).unwrap();
        let reader = session.register(reader_program()).unwrap();
        let a = session.create_device("tenant-a");
        let b = session.create_device("tenant-b");
        let c = session.create_device("tenant-c");
        let outcomes = session
            .submit_batch(&mixed_batch(writer, reader, a, b, c))
            .unwrap();
        let snapshots = [a, b, c]
            .into_iter()
            .map(|d| (session.device_snapshot(d), session.device_clock(d)))
            .collect();
        (outcomes, snapshots)
    };

    let (parallel, parallel_snaps) = run(pool_session(|b| b.workers(4)));
    let (serial, serial_snaps) = run(pool_session(|b| b.serial()));
    assert_eq!(
        parallel, serial,
        "parallel lanes must be bit-identical to serial submission"
    );
    assert_eq!(parallel_snaps, serial_snaps);

    // Distinct devices never see each other's queueing: the first request
    // of every lane found it idle.
    for first_of_lane in [0, 2, 3] {
        assert_eq!(
            parallel[first_of_lane].summary.queueing_time,
            Duration::ZERO
        );
    }
    // Within tenant-a's lane, queueing accumulates in request order.
    assert_eq!(
        parallel[4].summary.queueing_time,
        parallel[0].summary.service_time
    );
    assert_eq!(
        parallel[8].summary.queueing_time,
        parallel[0].summary.service_time + parallel[4].summary.service_time
    );
    // Fresh requests never queue.
    for fresh in [1, 5, 9] {
        assert_eq!(parallel[fresh].summary.queueing_time, Duration::ZERO);
    }
}

#[test]
fn repeated_batches_are_replayable_across_sessions() {
    let run = |mut session: Session| -> Vec<RunOutcome> {
        let writer = session.register(writer_program()).unwrap();
        let reader = session.register(reader_program()).unwrap();
        let a = session.create_device("tenant-a");
        let b = session.create_device("tenant-b");
        let c = session.create_device("tenant-c");
        let mut all = Vec::new();
        for _ in 0..3 {
            all.extend(
                session
                    .submit_batch(&mixed_batch(writer, reader, a, b, c))
                    .unwrap(),
            );
        }
        all
    };
    let first = run(pool_session(|b| b.workers(3)));
    let second = run(pool_session(|b| b.workers(8)));
    assert_eq!(
        first, second,
        "device aging across batches must not depend on the worker count"
    );
    // Later batches start where the previous ones left the stream clocks:
    // the second batch's lane heads queue behind nothing (their arrival is
    // the advanced clock), but their deltas still differ from round one
    // because the devices warmed up.
    assert_eq!(first[10].summary.queueing_time, Duration::ZERO);
}

#[test]
fn checkpointed_device_replays_identically_to_the_uninterrupted_stream() {
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let device = session.create_device("tenant");
    let policies = [
        Policy::PudSsd,
        Policy::HostCpu,
        Policy::Conduit,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::HostCpu,
    ];

    // Uninterrupted run: all six requests on one session.
    let uninterrupted: Vec<RunOutcome> = policies
        .iter()
        .map(|&p| {
            session
                .submit(&RunRequest::new(writer, p).on_device(device))
                .unwrap()
        })
        .collect();

    // Interrupted run: replay the first three, checkpoint, revive in a new
    // session ("process"), replay the rest.
    let mut before = pool_session(|b| b);
    let writer_before = before.register(writer_program()).unwrap();
    let dev_before = before.create_device("tenant");
    let mut interrupted: Vec<RunOutcome> = policies[..3]
        .iter()
        .map(|&p| {
            before
                .submit(&RunRequest::new(writer_before, p).on_device(dev_before))
                .unwrap()
        })
        .collect();
    let checkpoint = before.export_device(dev_before).unwrap();
    drop(before);

    let mut after = pool_session(|b| b);
    let writer_after = after.register(writer_program()).unwrap();
    let dev_after = after.import_device("tenant", &checkpoint).unwrap();
    interrupted.extend(policies[3..].iter().map(|&p| {
        after
            .submit(&RunRequest::new(writer_after, p).on_device(dev_after))
            .unwrap()
    }));

    assert_eq!(
        interrupted, uninterrupted,
        "a checkpoint round-trip must not change the stream's results"
    );
    assert_eq!(
        after.device_snapshot(dev_after),
        session.device_snapshot(device)
    );
    assert_eq!(after.device_clock(dev_after), session.device_clock(device));
}

/// The canonical aged device pinned by the golden file: a fixed mix of
/// SSD-internal and host traffic on the small test configuration —
/// deterministic, so the exported bytes are reproducible everywhere.
fn canonical_checkpoint() -> Vec<u8> {
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let reader = session.register(reader_program()).unwrap();
    let device = session.create_device("golden");
    for &(program, policy) in &[
        (writer, Policy::PudSsd),
        (writer, Policy::HostCpu),
        (reader, Policy::Conduit),
        (writer, Policy::Conduit),
        (reader, Policy::IspOnly),
    ] {
        session
            .submit(&RunRequest::new(program, policy).on_device(device))
            .unwrap();
    }
    session.export_device(device).unwrap()
}

#[test]
fn golden_file_pins_the_checkpoint_format() {
    let bytes = canonical_checkpoint();
    let path = golden_path();
    if std::env::var_os("CONDUIT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent")).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with CONDUIT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        committed, bytes,
        "serialized device-checkpoint bytes drifted from \
         tests/golden/device_checkpoint_v1.bin — if the format change is \
         intentional, bump DEVICE_STATE_FORMAT_VERSION (and/or \
         DEVICE_CHECKPOINT_FORMAT_VERSION) and regenerate with \
         CONDUIT_REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_file_still_imports_and_serves_traffic() {
    let committed = std::fs::read(golden_path()).expect("golden file is committed");
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let device = session.import_device("golden", &committed).unwrap();
    let snap = session.device_snapshot(device);
    assert!(snap.device_ops > 0, "the golden device is aged: {snap:?}");
    assert!(snap.coherence_writes > 0);
    // The revived device keeps serving: its state is consistent enough for
    // further traffic, and re-exporting reproduces the bytes exactly.
    assert_eq!(session.export_device(device).unwrap(), committed);
    session
        .submit(&RunRequest::new(writer, Policy::Conduit).on_device(device))
        .unwrap();
    assert!(session.device_snapshot(device).device_ops > snap.device_ops);
}
