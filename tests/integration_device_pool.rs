//! The device-pool Session API: named warm devices, per-device FIFO lanes,
//! stream clocks and serializable device checkpoints.
//!
//! Three properties are pinned down here:
//!
//! 1. **Per-device determinism**: a mixed batch across three warm devices
//!    plus fresh requests is bit-identical whether the lanes run in
//!    parallel on the thread pool or the whole batch runs serially on the
//!    calling thread.
//! 2. **Checkpoint fidelity**: exporting a device mid-stream, importing it
//!    into a fresh session and replaying the remainder matches the
//!    uninterrupted run exactly.
//! 3. **Format stability**: a committed golden checkpoint
//!    (`tests/golden/device_checkpoint_v3.bin`) pins the byte-exact
//!    encoding of a canonical aged device, and the frozen
//!    `tests/golden/device_checkpoint_v1.bin` /
//!    `tests/golden/device_checkpoint_v2.bin` files assert that legacy
//!    version-1 checkpoints (dense flash image, no configuration
//!    fingerprint, no lane statistics) and version-2 checkpoints (delta
//!    flash image and lane statistics, but dense resource timelines and no
//!    fault state) still decode. If an intentional format change breaks
//!    `golden_file_pins_the_checkpoint_format`, bump
//!    `DEVICE_STATE_FORMAT_VERSION` / `DEVICE_CHECKPOINT_FORMAT_VERSION`
//!    and regenerate with:
//!
//!    ```text
//!    CONDUIT_REGEN_GOLDEN=1 cargo test --test integration_device_pool
//!    ```
//! 4. **Scheduling**: on a small two-worker pool, lane tasks run in the
//!    thread pool's reserved lane class, so a batch whose fresh backlog
//!    dwarfs its lane work still serves the lanes promptly — without
//!    changing any simulated result (everything stays bit-identical to
//!    `.serial()` submission).
//! 5. **Open-loop arrivals**: explicit `RunRequest::arriving_at` offsets
//!    produce the same summaries on every pool size.

use conduit::{DeviceHandle, Policy, ProgramId, RunOutcome, RunRequest, Session};
use conduit_types::{
    Duration, LogicalPageId, OpType, Operand, SimTime, SsdConfig, VectorInst, VectorProgram,
};

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn golden_path() -> std::path::PathBuf {
    golden_dir().join("device_checkpoint_v3.bin")
}

fn legacy_v2_golden_path() -> std::path::PathBuf {
    golden_dir().join("device_checkpoint_v2.bin")
}

fn legacy_golden_path() -> std::path::PathBuf {
    golden_dir().join("device_checkpoint_v1.bin")
}

/// A program whose store forces out-of-place writes on every run.
fn writer_program() -> VectorProgram {
    let mut prog = VectorProgram::new("writer");
    let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    prog.push(
        VectorInst::binary(1, OpType::Add, Operand::result(x), Operand::page(8))
            .store_to(LogicalPageId::new(12)),
    );
    prog
}

/// A second program touching different pages, so tenants' footprints
/// differ.
fn reader_program() -> VectorProgram {
    let mut prog = VectorProgram::new("reader");
    let a = prog.push_binary(OpType::And, Operand::page(16), Operand::page(20));
    prog.push_binary(OpType::Mul, Operand::result(a), Operand::page(24));
    prog
}

/// The canonical mixed batch: three tenants with interleaved multi-request
/// lanes, plus fresh requests fanned out alongside.
fn mixed_batch(
    writer: ProgramId,
    reader: ProgramId,
    a: DeviceHandle,
    b: DeviceHandle,
    c: DeviceHandle,
) -> Vec<RunRequest> {
    vec![
        RunRequest::new(writer, Policy::Conduit).on_device(a),
        RunRequest::new(reader, Policy::Conduit),
        RunRequest::new(writer, Policy::PudSsd).on_device(b),
        RunRequest::new(reader, Policy::IspOnly).on_device(c),
        RunRequest::new(writer, Policy::HostCpu).on_device(a),
        RunRequest::new(reader, Policy::Ideal),
        RunRequest::new(reader, Policy::Conduit).on_device(b),
        RunRequest::new(writer, Policy::Conduit).on_device(c),
        RunRequest::new(writer, Policy::PudSsd).on_device(a),
        RunRequest::new(reader, Policy::HostCpu),
    ]
}

fn pool_session(
    configure: impl FnOnce(conduit::SessionBuilder) -> conduit::SessionBuilder,
) -> Session {
    configure(Session::builder(SsdConfig::small_for_tests())).build()
}

#[test]
fn three_device_mixed_batch_is_bit_identical_to_serial_submission() {
    let run = |mut session: Session| -> (Vec<RunOutcome>, Vec<_>) {
        let writer = session.register(writer_program()).unwrap();
        let reader = session.register(reader_program()).unwrap();
        let a = session.create_device("tenant-a");
        let b = session.create_device("tenant-b");
        let c = session.create_device("tenant-c");
        let outcomes = session
            .submit_batch(&mixed_batch(writer, reader, a, b, c))
            .unwrap();
        let snapshots = [a, b, c]
            .into_iter()
            .map(|d| (session.device_snapshot(d), session.device_clock(d)))
            .collect();
        (outcomes, snapshots)
    };

    let (parallel, parallel_snaps) = run(pool_session(|b| b.workers(4)));
    let (serial, serial_snaps) = run(pool_session(|b| b.serial()));
    assert_eq!(
        parallel, serial,
        "parallel lanes must be bit-identical to serial submission"
    );
    assert_eq!(parallel_snaps, serial_snaps);

    // Distinct devices never see each other's queueing: the first request
    // of every lane found it idle.
    for first_of_lane in [0, 2, 3] {
        assert_eq!(
            parallel[first_of_lane].summary.queueing_time,
            Duration::ZERO
        );
    }
    // Within tenant-a's lane, queueing accumulates in request order.
    assert_eq!(
        parallel[4].summary.queueing_time,
        parallel[0].summary.service_time
    );
    assert_eq!(
        parallel[8].summary.queueing_time,
        parallel[0].summary.service_time + parallel[4].summary.service_time
    );
    // Fresh requests never queue.
    for fresh in [1, 5, 9] {
        assert_eq!(parallel[fresh].summary.queueing_time, Duration::ZERO);
    }
}

#[test]
fn repeated_batches_are_replayable_across_sessions() {
    let run = |mut session: Session| -> Vec<RunOutcome> {
        let writer = session.register(writer_program()).unwrap();
        let reader = session.register(reader_program()).unwrap();
        let a = session.create_device("tenant-a");
        let b = session.create_device("tenant-b");
        let c = session.create_device("tenant-c");
        let mut all = Vec::new();
        for _ in 0..3 {
            all.extend(
                session
                    .submit_batch(&mixed_batch(writer, reader, a, b, c))
                    .unwrap(),
            );
        }
        all
    };
    let first = run(pool_session(|b| b.workers(3)));
    let second = run(pool_session(|b| b.workers(8)));
    assert_eq!(
        first, second,
        "device aging across batches must not depend on the worker count"
    );
    // Later batches start where the previous ones left the stream clocks:
    // the second batch's lane heads queue behind nothing (their arrival is
    // the advanced clock), but their deltas still differ from round one
    // because the devices warmed up.
    assert_eq!(first[10].summary.queueing_time, Duration::ZERO);
}

#[test]
fn checkpointed_device_replays_identically_to_the_uninterrupted_stream() {
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let device = session.create_device("tenant");
    let policies = [
        Policy::PudSsd,
        Policy::HostCpu,
        Policy::Conduit,
        Policy::IspOnly,
        Policy::PudSsd,
        Policy::HostCpu,
    ];

    // Uninterrupted run: all six requests on one session.
    let uninterrupted: Vec<RunOutcome> = policies
        .iter()
        .map(|&p| {
            session
                .submit(&RunRequest::new(writer, p).on_device(device))
                .unwrap()
        })
        .collect();

    // Interrupted run: replay the first three, checkpoint, revive in a new
    // session ("process"), replay the rest.
    let mut before = pool_session(|b| b);
    let writer_before = before.register(writer_program()).unwrap();
    let dev_before = before.create_device("tenant");
    let mut interrupted: Vec<RunOutcome> = policies[..3]
        .iter()
        .map(|&p| {
            before
                .submit(&RunRequest::new(writer_before, p).on_device(dev_before))
                .unwrap()
        })
        .collect();
    let checkpoint = before.export_device(dev_before).unwrap();
    drop(before);

    let mut after = pool_session(|b| b);
    let writer_after = after.register(writer_program()).unwrap();
    let dev_after = after.import_device("tenant", &checkpoint).unwrap();
    interrupted.extend(policies[3..].iter().map(|&p| {
        after
            .submit(&RunRequest::new(writer_after, p).on_device(dev_after))
            .unwrap()
    }));

    assert_eq!(
        interrupted, uninterrupted,
        "a checkpoint round-trip must not change the stream's results"
    );
    assert_eq!(
        after.device_snapshot(dev_after),
        session.device_snapshot(device)
    );
    assert_eq!(after.device_clock(dev_after), session.device_clock(device));
}

/// The acceptance scenario for the two-class scheduler: a 2-worker pool,
/// one batch of 16 heavy fresh requests plus 4 light one-request lanes.
///
/// Under the old single-queue pool the lane tasks were enqueued behind the
/// whole fresh fan-out, so on a small pool the lanes' *wall-clock*
/// completion waited for the fresh cursor to drain — pure scheduler
/// artifact. With reserved lane slots the lanes finish while the fresh
/// backlog is still running. The *simulated* lane queueing, meanwhile, is
/// arrival-relative and scheduler-independent: each one-request lane finds
/// its device idle, so its `queueing_time` is exactly zero (the metric now
/// measures device contention only, never pool contention), and the whole
/// batch stays bit-identical to `.serial()` submission.
#[test]
fn lanes_are_served_ahead_of_a_heavy_fresh_backlog_on_two_workers() {
    let build = |configure: fn(conduit::SessionBuilder) -> conduit::SessionBuilder| {
        let mut session = pool_session(configure);
        let writer = session.register(writer_program()).unwrap();
        let devices: Vec<DeviceHandle> = (0..4)
            .map(|i| session.create_device(&format!("tenant-{i}")))
            .collect();
        // 16 heavy fresh requests first, then 4 light one-request lanes —
        // the worst ordering for a FIFO scheduler.
        let mut requests: Vec<RunRequest> = (0..16)
            .map(|_| RunRequest::new(writer, Policy::Conduit).repeat(400))
            .collect();
        requests.extend(
            devices
                .iter()
                .map(|&d| RunRequest::new(writer, Policy::Conduit).on_device(d)),
        );
        (session, devices, requests)
    };

    let (session, devices, requests) = build(|b| b.workers(2));
    let started = std::time::Instant::now();
    let (outcomes, lanes_done_after) = std::thread::scope(|scope| {
        let worker = scope.spawn(|| session.submit_batch(&requests).unwrap());
        // Poll the stream clocks: a lane's clock leaves zero exactly when
        // its (only) request has been served.
        let mut lanes_done_after = None;
        while lanes_done_after.is_none() {
            if devices
                .iter()
                .all(|&d| session.device_clock(d) > SimTime::ZERO)
            {
                lanes_done_after = Some(started.elapsed());
            } else if worker.is_finished() {
                // The whole batch finished before we observed the lanes —
                // record "at the very end" so the assertion below fails
                // with a meaningful ratio rather than hanging.
                lanes_done_after = Some(started.elapsed());
            } else {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        (worker.join().unwrap(), lanes_done_after.unwrap())
    });
    let total = started.elapsed();

    // Wall-clock fairness: the four lanes were served long before the
    // 16-request fresh backlog drained. (The generous factor keeps the
    // assertion robust on noisy CI machines; the old FIFO pool sat at
    // ~100% of the batch time.)
    assert!(
        lanes_done_after < total / 2,
        "lanes finished after {lanes_done_after:?} of a {total:?} batch — \
         lane work starved behind the fresh backlog"
    );

    // Simulated queueing is scheduler-free: every one-request lane found
    // its device idle.
    for lane_outcome in &outcomes[16..] {
        assert_eq!(lane_outcome.summary.queueing_time, Duration::ZERO);
        assert_eq!(lane_outcome.summary.device_delta.lane_requests, 1);
    }

    // And nothing about the schedule leaks into the results: bit-identical
    // to a fully serial submission of the same batch.
    let (serial_session, serial_devices, serial_requests) = build(|b| b.serial());
    let serial = serial_session.submit_batch(&serial_requests).unwrap();
    assert_eq!(outcomes, serial);
    for (&d, &sd) in devices.iter().zip(&serial_devices) {
        assert_eq!(
            session.device_snapshot(d),
            serial_session.device_snapshot(sd)
        );
        assert_eq!(session.device_clock(d), serial_session.device_clock(sd));
    }
}

/// Same arrivals ⇒ bit-identical summaries, whatever the pool size: the
/// open-loop arrival offsets are part of the request, not of the schedule.
#[test]
fn arrival_times_are_deterministic_across_pool_sizes() {
    let run = |configure: fn(conduit::SessionBuilder) -> conduit::SessionBuilder| {
        let mut session = pool_session(configure);
        let writer = session.register(writer_program()).unwrap();
        let reader = session.register(reader_program()).unwrap();
        let a = session.create_device("tenant-a");
        let b = session.create_device("tenant-b");
        let at = |us: f64| SimTime::ZERO + Duration::from_us(us);
        let batch = vec![
            RunRequest::new(writer, Policy::Conduit).on_device(a),
            RunRequest::new(reader, Policy::IspOnly)
                .on_device(b)
                .arriving_at(at(40.0)),
            RunRequest::new(writer, Policy::PudSsd)
                .on_device(a)
                .arriving_at(at(25.0)),
            RunRequest::new(reader, Policy::Conduit), // fresh alongside
            RunRequest::new(writer, Policy::HostCpu)
                .on_device(b)
                .arriving_at(at(90.0)),
            RunRequest::new(reader, Policy::Conduit)
                .on_device(a)
                .arriving_at(at(4000.0)),
        ];
        let outcomes = session.submit_batch(&batch).unwrap();
        let snapshots: Vec<_> = [a, b]
            .into_iter()
            .map(|d| (session.device_snapshot(d), session.device_clock(d)))
            .collect();
        (outcomes, snapshots)
    };

    let serial = run(|b| b.serial());
    for workers in [2, 4, 8] {
        let parallel = match workers {
            2 => run(|b| b.workers(2)),
            4 => run(|b| b.workers(4)),
            8 => run(|b| b.workers(8)),
            _ => unreachable!(),
        };
        assert_eq!(
            parallel, serial,
            "arrival-driven schedule must not depend on {workers}-worker pools"
        );
    }

    // The arrivals did shape the stream: the late request (4 ms) found
    // tenant-a idle — zero queueing, an idle gap on the device — while the
    // mid-service arrival (25 µs) queued for less than the full first
    // service.
    let (outcomes, snapshots) = serial;
    assert_eq!(outcomes[5].summary.queueing_time, Duration::ZERO);
    assert!(snapshots[0].0.lane_idle_time > Duration::ZERO);
    assert!(snapshots[0].0.lane_occupancy() < 1.0);
    assert!(outcomes[2].summary.queueing_time > Duration::ZERO);
    assert!(outcomes[2].summary.queueing_time < outcomes[0].summary.service_time);
}

/// The canonical aged device pinned by the golden file: a fixed mix of
/// SSD-internal and host traffic on the small test configuration —
/// deterministic, so the exported bytes are reproducible everywhere.
fn canonical_checkpoint() -> Vec<u8> {
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let reader = session.register(reader_program()).unwrap();
    let device = session.create_device("golden");
    for &(program, policy) in &[
        (writer, Policy::PudSsd),
        (writer, Policy::HostCpu),
        (reader, Policy::Conduit),
        (writer, Policy::Conduit),
        (reader, Policy::IspOnly),
    ] {
        session
            .submit(&RunRequest::new(program, policy).on_device(device))
            .unwrap();
    }
    session.export_device(device).unwrap()
}

#[test]
fn golden_file_pins_the_checkpoint_format() {
    let bytes = canonical_checkpoint();
    let path = golden_path();
    if std::env::var_os("CONDUIT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent")).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with CONDUIT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        committed, bytes,
        "serialized device-checkpoint bytes drifted from \
         tests/golden/device_checkpoint_v3.bin — if the format change is \
         intentional, bump DEVICE_STATE_FORMAT_VERSION (and/or \
         DEVICE_CHECKPOINT_FORMAT_VERSION) and regenerate with \
         CONDUIT_REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_file_still_imports_and_serves_traffic() {
    let committed = std::fs::read(golden_path()).expect("golden file is committed");
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let device = session.import_device("golden", &committed).unwrap();
    let snap = session.device_snapshot(device);
    assert!(snap.device_ops > 0, "the golden device is aged: {snap:?}");
    assert!(snap.coherence_writes > 0);
    // The revived device keeps serving: its state is consistent enough for
    // further traffic, and re-exporting reproduces the bytes exactly.
    assert_eq!(session.export_device(device).unwrap(), committed);
    session
        .submit(&RunRequest::new(writer, Policy::Conduit).on_device(device))
        .unwrap();
    assert!(session.device_snapshot(device).device_ops > snap.device_ops);
}

/// The frozen version-1 golden file (dense flash image, no configuration
/// fingerprint, no lane statistics) must keep decoding: old processes'
/// checkpoints survive the format bump.
#[test]
fn legacy_v1_golden_still_imports_and_round_trips() {
    let committed = std::fs::read(legacy_golden_path()).expect("legacy golden file is committed");
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let device = session.import_device("legacy", &committed).unwrap();
    let snap = session.device_snapshot(device);
    assert!(snap.device_ops > 0, "the legacy device is aged: {snap:?}");
    assert!(snap.coherence_writes > 0);
    assert_eq!(
        snap.lane_requests, 0,
        "v1 checkpoints predate lane statistics; they restore as zero"
    );

    // Old-version decode round-trips through the current format: re-export
    // writes version-3 bytes whose re-import restores the identical state.
    let upgraded = session.export_device(device).unwrap();
    assert_ne!(upgraded, committed, "re-export upgrades to the v3 format");
    let mut other = pool_session(|b| b);
    let revived = other.import_device("legacy", &upgraded).unwrap();
    assert_eq!(other.device_snapshot(revived), snap);
    assert_eq!(other.device_clock(revived), session.device_clock(device));

    // And the upgraded device still serves traffic.
    session
        .submit(&RunRequest::new(writer, Policy::Conduit).on_device(device))
        .unwrap();
    assert!(session.device_snapshot(device).device_ops > snap.device_ops);
}

/// The frozen version-2 golden file (delta flash image and lane
/// statistics, but dense resource timelines and no fault state) must keep
/// decoding after the version-3 sparse-resource/fault-tail bump.
#[test]
fn legacy_v2_golden_still_imports_and_round_trips() {
    let committed =
        std::fs::read(legacy_v2_golden_path()).expect("legacy v2 golden file is committed");
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let device = session.import_device("legacy-v2", &committed).unwrap();
    let snap = session.device_snapshot(device);
    assert!(
        snap.device_ops > 0,
        "the v2 golden device is aged: {snap:?}"
    );
    assert!(snap.coherence_writes > 0);
    assert!(
        snap.lane_requests > 0,
        "v2 checkpoints already carry lane statistics"
    );
    assert_eq!(
        snap.retired_blocks, 0,
        "v2 checkpoints predate fault state; they restore fault-free"
    );

    // Old-version decode round-trips through the current format: re-export
    // writes version-3 bytes whose re-import restores the identical state.
    let upgraded = session.export_device(device).unwrap();
    assert_ne!(upgraded, committed, "re-export upgrades to the v3 format");
    let mut other = pool_session(|b| b);
    let revived = other.import_device("legacy-v2", &upgraded).unwrap();
    assert_eq!(other.device_snapshot(revived), snap);
    assert_eq!(other.device_clock(revived), session.device_clock(device));

    // And the upgraded device still serves traffic.
    session
        .submit(&RunRequest::new(writer, Policy::Conduit).on_device(device))
        .unwrap();
    assert!(session.device_snapshot(device).device_ops > snap.device_ops);
}

/// The delta-against-pristine encoding: a cold (never-used) device's
/// checkpoint must not embed the full per-block flash image.
#[test]
fn cold_device_checkpoints_are_small() {
    let mut session = pool_session(|b| b);
    let writer = session.register(writer_program()).unwrap();
    let cold = session.create_device("cold");
    let warm = session.create_device("warm");
    for policy in [Policy::PudSsd, Policy::HostCpu, Policy::Conduit] {
        session
            .submit(&RunRequest::new(writer, policy).on_device(warm))
            .unwrap();
    }
    let cold_bytes = session.export_device(cold).unwrap();
    let warm_bytes = session.export_device(warm).unwrap();
    // The small test geometry alone has hundreds of blocks; the dense v1
    // image packed every one of them (~20 KB at this scale; megabytes at
    // paper scale). The sparse encoding stores none of them for a cold
    // device — what remains is the fixed-size timeline/energy bookkeeping,
    // which does not grow with the flash array.
    assert!(
        cold_bytes.len() < 4096,
        "cold checkpoint should be dominated by fixed bookkeeping, got {} bytes",
        cold_bytes.len()
    );
    assert!(
        cold_bytes.len() < warm_bytes.len(),
        "an aged device's checkpoint carries its touched blocks"
    );
    // Both still round-trip exactly.
    let mut other = pool_session(|b| b);
    let revived = other.import_device("warm", &warm_bytes).unwrap();
    assert_eq!(
        other.device_snapshot(revived),
        session.device_snapshot(warm)
    );
}
