//! Deterministic fault injection end to end: seeded fault plans are
//! bit-identical across thread-pool sizes, degraded devices reject writes
//! with a typed error instead of panicking, degraded state survives an
//! export/import/replay cycle exactly, a zero-fault plan cannot perturb a
//! fault-free session, and corrupted fault-state checkpoint bytes are
//! rejected cleanly.

use conduit::{DeviceHandle, Policy, ProgramId, RunOutcome, RunRequest, Session};
use conduit_types::{
    ConduitError, FaultConfig, LogicalPageId, OpType, Operand, SsdConfig, VectorInst, VectorProgram,
};

/// A program whose store forces out-of-place writes on every run.
fn writer_program() -> VectorProgram {
    let mut prog = VectorProgram::new("writer");
    let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    prog.push(
        VectorInst::binary(1, OpType::Add, Operand::result(x), Operand::page(8))
            .store_to(LogicalPageId::new(12)),
    );
    prog
}

/// A read-only program: no stores, so it keeps working on a degraded
/// (read-only) device once its operand pages are mapped.
fn reader_program() -> VectorProgram {
    let mut prog = VectorProgram::new("reader");
    let a = prog.push_binary(OpType::And, Operand::page(16), Operand::page(20));
    prog.push_binary(OpType::Mul, Operand::result(a), Operand::page(24));
    prog
}

fn pool_session(
    configure: impl FnOnce(conduit::SessionBuilder) -> conduit::SessionBuilder,
) -> Session {
    configure(Session::builder(SsdConfig::small_for_tests())).build()
}

/// A fault mix aggressive enough to fire within a short batch but gentle
/// enough (default 8-block spare budget) not to degrade the device.
fn lively_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        read_transient_rate: 0.5,
        program_fail_rate: 0.2,
        erase_fail_rate: 0.3,
        wear_sensitivity: 0.05,
        ..FaultConfig::with_seed(seed)
    }
}

/// The canonical faulty workload: three seeded devices served a mixed
/// batch (plus fresh requests) three times over.
fn faulty_batch(
    writer: ProgramId,
    reader: ProgramId,
    a: DeviceHandle,
    b: DeviceHandle,
    c: DeviceHandle,
) -> Vec<RunRequest> {
    vec![
        RunRequest::new(writer, Policy::Conduit).on_device(a),
        RunRequest::new(reader, Policy::Conduit),
        RunRequest::new(writer, Policy::PudSsd).on_device(b),
        RunRequest::new(reader, Policy::IspOnly).on_device(c),
        RunRequest::new(writer, Policy::HostCpu).on_device(a),
        RunRequest::new(writer, Policy::Conduit).on_device(b),
        RunRequest::new(reader, Policy::Conduit).on_device(a),
        RunRequest::new(writer, Policy::Conduit).on_device(c),
    ]
}

#[test]
fn seeded_faults_are_bit_identical_across_pool_sizes() {
    let run = |mut session: Session| {
        let writer = session.register(writer_program()).unwrap();
        let reader = session.register(reader_program()).unwrap();
        let a = session.create_device_with_faults("tenant-a", lively_faults(11));
        let b = session.create_device_with_faults("tenant-b", lively_faults(22));
        let c = session.create_device_with_faults("tenant-c", lively_faults(33));
        let mut outcomes: Vec<RunOutcome> = Vec::new();
        for _ in 0..3 {
            outcomes.extend(
                session
                    .submit_batch(&faulty_batch(writer, reader, a, b, c))
                    .unwrap(),
            );
        }
        let snapshots: Vec<_> = [a, b, c]
            .into_iter()
            .map(|d| (session.device_snapshot(d), session.device_clock(d)))
            .collect();
        let exports: Vec<_> = [a, b, c]
            .into_iter()
            .map(|d| session.export_device(d).unwrap())
            .collect();
        (outcomes, snapshots, exports)
    };

    let serial = run(pool_session(|b| b.serial()));

    // The plans actually fired: this is a fault-exercising workload, not a
    // vacuous all-quiet pass.
    let activity: u64 = serial
        .1
        .iter()
        .map(|(s, _)| s.read_retries + s.program_failures + s.erase_failures)
        .sum();
    assert!(activity > 0, "the fault mix never fired: {:?}", serial.1);

    for workers in [2, 4, 8] {
        let parallel = match workers {
            2 => run(pool_session(|b| b.workers(2))),
            4 => run(pool_session(|b| b.workers(4))),
            8 => run(pool_session(|b| b.workers(8))),
            _ => unreachable!(),
        };
        assert_eq!(
            parallel, serial,
            "seeded fault injection must not depend on {workers}-worker pools"
        );
    }
}

/// Drives a device past its spare-block budget and returns the session,
/// the degraded device, and the registered program ids.
fn degraded_session() -> (Session, DeviceHandle, ProgramId, ProgramId) {
    let mut session = pool_session(|b| b.serial());
    let writer = session.register(writer_program()).unwrap();
    let reader = session.register(reader_program()).unwrap();
    let device = session.create_device_with_faults(
        "wearout",
        FaultConfig {
            program_fail_rate: 0.8,
            spare_blocks: 1,
            ..FaultConfig::with_seed(7)
        },
    );
    // Map the reader's operand pages while the device still accepts writes,
    // so post-degradation reads exercise the read-only path.
    session
        .submit(&RunRequest::new(reader, Policy::Conduit).on_device(device))
        .unwrap();
    // Alternating the policy forces the dirty store out of the DRAM
    // coherence buffer and through the FTL's flash program path on every
    // other run — that's where program faults fire.
    for i in 0..64 {
        let policy = if i % 2 == 0 {
            Policy::Conduit
        } else {
            Policy::HostCpu
        };
        match session.submit(&RunRequest::new(writer, policy).on_device(device)) {
            Ok(_) => {}
            Err(err) => {
                assert!(
                    matches!(err, ConduitError::DeviceDegraded { .. }),
                    "expected DeviceDegraded, got {err}"
                );
                assert!(session.device_snapshot(device).health.is_degraded());
                return (session, device, writer, reader);
            }
        }
    }
    panic!("an 80% program-failure rate never exhausted a 1-block spare budget");
}

#[test]
fn degraded_device_rejects_writes_and_keeps_serving_reads() {
    let (session, device, writer, reader) = degraded_session();
    let snap = session.device_snapshot(device);
    assert!(
        snap.retired_blocks > 1,
        "degradation means the 1-block spare budget was exceeded: {snap:?}"
    );
    assert!(snap.program_failures > 0);

    // Writes stay rejected — same typed error, no panic, every time.
    for _ in 0..3 {
        let err = session
            .submit(&RunRequest::new(writer, Policy::Conduit).on_device(device))
            .unwrap_err();
        assert!(matches!(err, ConduitError::DeviceDegraded { .. }));
    }

    // Reads of already-mapped data still flow.
    let outcome = session
        .submit(&RunRequest::new(reader, Policy::Conduit).on_device(device))
        .unwrap();
    assert_eq!(outcome.summary.instructions, 2);
}

#[test]
fn degraded_device_checkpoint_round_trips_and_replays_identically() {
    let (session, device, writer, reader) = degraded_session();
    let bytes = session.export_device(device).unwrap();

    let mut revived_session = pool_session(|b| b.serial());
    let revived_writer = revived_session.register(writer_program()).unwrap();
    let revived_reader = revived_session.register(reader_program()).unwrap();
    let revived = revived_session.import_device("wearout", &bytes).unwrap();

    assert_eq!(
        revived_session.device_snapshot(revived),
        session.device_snapshot(device)
    );
    assert_eq!(
        revived_session.device_clock(revived),
        session.device_clock(device)
    );
    assert!(revived_session
        .device_snapshot(revived)
        .health
        .is_degraded());
    assert_eq!(
        revived_session.export_device(revived).unwrap(),
        bytes,
        "import → export is byte-stable for a degraded device"
    );

    // Replaying the same requests produces identical results on both
    // sides: rejected writes and served reads alike. (A rejected write
    // still consumes simulated device time — its operand loads run before
    // the store is turned away — so it is replayed on both sessions.)
    let err = revived_session
        .submit(&RunRequest::new(revived_writer, Policy::Conduit).on_device(revived))
        .unwrap_err();
    assert!(matches!(err, ConduitError::DeviceDegraded { .. }));
    let err = session
        .submit(&RunRequest::new(writer, Policy::Conduit).on_device(device))
        .unwrap_err();
    assert!(matches!(err, ConduitError::DeviceDegraded { .. }));
    let original_read = session
        .submit(&RunRequest::new(reader, Policy::Conduit).on_device(device))
        .unwrap();
    let revived_read = revived_session
        .submit(&RunRequest::new(revived_reader, Policy::Conduit).on_device(revived))
        .unwrap();
    assert_eq!(revived_read, original_read);
    assert_eq!(
        revived_session.export_device(revived).unwrap(),
        session.export_device(device).unwrap()
    );
}

#[test]
fn zero_fault_plan_is_bit_identical_to_a_fault_free_session() {
    let run = |mut session: Session| {
        let writer = session.register(writer_program()).unwrap();
        let reader = session.register(reader_program()).unwrap();
        let warm = session.create_device("steady");
        let requests = vec![
            RunRequest::new(writer, Policy::Conduit).on_device(warm),
            RunRequest::new(reader, Policy::Conduit),
            RunRequest::new(writer, Policy::PudSsd).on_device(warm),
            RunRequest::new(reader, Policy::IspOnly).on_device(warm),
        ];
        let outcomes = session.submit_batch(&requests).unwrap();
        (
            outcomes,
            session.device_snapshot(warm),
            session.device_clock(warm),
        )
    };

    // An inert plan never draws, so even a non-zero seed cannot perturb the
    // stream: results match a session that never heard of fault injection.
    let plain = run(pool_session(|b| b));
    let seeded = run(pool_session(|b| {
        b.faults(FaultConfig::with_seed(0xDEAD_BEEF))
    }));
    assert_eq!(seeded, plain);
}

#[test]
fn corrupted_fault_state_checkpoints_are_rejected_not_panicked() {
    let mut session = pool_session(|b| b.serial());
    let writer = session.register(writer_program()).unwrap();
    let device = session.create_device_with_faults("fuzzed", lively_faults(99));
    // Alternating policies flushes the dirty store to flash (program-fault
    // territory) and re-reads evicted pages from the array (retry
    // territory), so the exported checkpoint carries a live fault plan.
    for policy in [
        Policy::Conduit,
        Policy::HostCpu,
        Policy::Conduit,
        Policy::HostCpu,
    ] {
        session
            .submit(&RunRequest::new(writer, policy).on_device(device))
            .unwrap();
    }
    let bytes = session.export_device(device).unwrap();
    let snap = session.device_snapshot(device);
    assert!(
        snap.read_retries + snap.program_failures > 0,
        "the fuzz target should carry live fault state: {snap:?}"
    );

    // Flip one 8-byte word at a time across the whole checkpoint — headers,
    // flash delta, fault tail, everything. Every mutation must come back as
    // a clean `Result`; the overwhelming majority as a rejection.
    let mut rejected = 0usize;
    let mut trials = 0usize;
    for offset in (0..bytes.len()).step_by(8) {
        let mut corrupt = bytes.clone();
        for b in corrupt[offset..bytes.len().min(offset + 8)].iter_mut() {
            *b ^= 0xA5;
        }
        let mut probe = pool_session(|b| b.serial());
        trials += 1;
        if probe.import_device("fuzzed", &corrupt).is_err() {
            rejected += 1;
        }
    }
    assert!(
        rejected * 2 > trials,
        "only {rejected}/{trials} corrupted checkpoints were rejected"
    );

    // Truncation anywhere inside the fault tail (the last stretch of the
    // FTL block) is likewise a clean rejection.
    for cut in 1..=8 {
        let truncated = &bytes[..bytes.len() - cut * 7];
        let mut probe = pool_session(|b| b.serial());
        assert!(probe.import_device("fuzzed", truncated).is_err());
    }

    // The pristine bytes still import, so the fuzz loop really was
    // exercising the validation paths rather than a broken baseline.
    let mut probe = pool_session(|b| b.serial());
    let ok = probe.import_device("fuzzed", &bytes).unwrap();
    assert_eq!(probe.device_snapshot(ok), snap);
}
