//! Weighted-fair device lanes and the fleet front-end, end to end.
//!
//! Pinned properties:
//!
//! 1. **Equal weights are FIFO** — a batch whose lane requests all carry
//!    the same weight (whatever its value) is bit-identical to the
//!    pre-weight FIFO lane, across serial and 2/4/8-worker pools.
//! 2. **Unequal weights split the lane proportionally** — with two
//!    always-backlogged flows at 3:1 weights on one lane, the early
//!    completions divide the lane's busy time in roughly that ratio
//!    (surplus-round-robin over simulated service time), while the full
//!    batch still serves every request.
//! 3. **Weighted lanes stay deterministic** — the same weighted batch is
//!    bit-identical on every pool size.
//! 4. **Fleet serving composes with sessions** — a single-tenant trace
//!    replayed through a `Fleet` matches the same trace replayed directly
//!    on a `Session` (same arrivals, same merged latency), whatever the
//!    shard count.

use conduit::{Policy, RunOutcome, RunRequest, Session};
use conduit_fleet::Fleet;
use conduit_sim::LatencyStats;
use conduit_traffic::{ArrivalSpec, TenantSpec, TrafficMix};
use conduit_types::{Duration, SsdConfig};
use conduit_workloads::{Scale, Workload};

fn session(workers: Option<usize>) -> Session {
    let builder = Session::builder(SsdConfig::small_for_tests());
    match workers {
        None => builder.serial(),
        Some(n) => builder.workers(n),
    }
    .build()
}

/// A backlogged two-flow batch on one lane: `hi` requests at weight
/// `w_hi`, `lo` requests at weight `w_lo`, all arriving at time zero,
/// interleaved in submission order.
fn two_flow_batch(
    session: &mut Session,
    hi: usize,
    w_hi: u32,
    lo: usize,
    w_lo: u32,
) -> Vec<RunRequest> {
    let program = Workload::XorFilter
        .program(Scale::test())
        .expect("generators always succeed");
    let id = session.register(program).expect("programs validate");
    let device = session.create_device("wfq-lane");
    let mut requests = Vec::new();
    for i in 0..hi.max(lo) {
        if i < hi {
            requests.push(
                RunRequest::new(id, Policy::Conduit)
                    .on_device(device)
                    .weighted(0, w_hi),
            );
        }
        if i < lo {
            requests.push(
                RunRequest::new(id, Policy::Conduit)
                    .on_device(device)
                    .weighted(1, w_lo),
            );
        }
    }
    requests
}

fn summaries(outcomes: &[RunOutcome]) -> Vec<(Duration, Duration, Duration)> {
    outcomes
        .iter()
        .map(|o| {
            (
                o.summary.total_time,
                o.summary.service_time,
                o.summary.queueing_time,
            )
        })
        .collect()
}

#[test]
fn equal_weights_are_bit_identical_to_fifo_on_every_pool() {
    // Weight 1 on the serial pool is the pre-weight FIFO baseline.
    let mut baseline_session = session(None);
    let batch = two_flow_batch(&mut baseline_session, 12, 1, 12, 1);
    let baseline = summaries(&baseline_session.submit_batch(&batch).unwrap());

    for weight in [1u32, 7] {
        for workers in [None, Some(2), Some(4), Some(8)] {
            let mut s = session(workers);
            let batch = two_flow_batch(&mut s, 12, weight, 12, weight);
            let outcomes = s.submit_batch(&batch).unwrap();
            assert_eq!(
                summaries(&outcomes),
                baseline,
                "uniform weight {weight} on workers {workers:?} must be plain FIFO"
            );
        }
    }
}

#[test]
fn unequal_weights_split_a_backlogged_lane_proportionally() {
    let mut s = session(None);
    let batch = two_flow_batch(&mut s, 32, 3, 32, 1);
    let outcomes = s.submit_batch(&batch).unwrap();
    assert_eq!(outcomes.len(), batch.len(), "every request is served");

    // All arrivals are at time zero, so each outcome's total time is its
    // completion instant. While both flows are backlogged, surplus round
    // robin should hand flow 0 about three quarters of the lane. Look at
    // the first half of completions: the busy time served to flow 0 must
    // be close to 3x flow 1's share.
    let mut completions: Vec<(Duration, u32, Duration)> = outcomes
        .iter()
        .zip(&batch)
        .map(|(o, r)| (o.summary.total_time, r.flow(), o.summary.service_time))
        .collect();
    completions.sort();
    let head = &completions[..completions.len() / 2];
    let busy = |flow: u32| -> f64 {
        head.iter()
            .filter(|(_, f, _)| *f == flow)
            .map(|(_, _, s)| s.as_ms())
            .sum()
    };
    let share = busy(0) / busy(1).max(f64::MIN_POSITIVE);
    assert!(
        (2.0..=4.5).contains(&share),
        "3:1 weights should split the backlogged lane ~3:1, got {share:.2}"
    );

    // The whole batch drains both flows completely.
    let served_hi = completions.iter().filter(|(_, f, _)| *f == 0).count();
    let served_lo = completions.iter().filter(|(_, f, _)| *f == 1).count();
    assert_eq!((served_hi, served_lo), (32, 32));
}

#[test]
fn weighted_batches_are_deterministic_across_pools() {
    let mut baseline = None;
    for workers in [None, Some(2), Some(4), Some(8)] {
        let mut s = session(workers);
        let batch = two_flow_batch(&mut s, 16, 5, 16, 2);
        let outcomes = summaries(&s.submit_batch(&batch).unwrap());
        match &baseline {
            None => baseline = Some(outcomes),
            Some(b) => assert_eq!(
                *b, outcomes,
                "weighted lanes must not depend on the pool size ({workers:?})"
            ),
        }
    }
}

#[test]
fn fleet_replay_matches_direct_session_replay() {
    let mix = TrafficMix::new(Scale::test()).tenant(TenantSpec::new(
        "solo",
        "solo-lane",
        Workload::Jacobi1d,
        Policy::Conduit,
        ArrivalSpec::Deterministic {
            interarrival: Duration::from_us(40.0),
            phase: Duration::ZERO,
        },
    ));
    let trace = mix.generate(Duration::from_us(1200.0)).unwrap();

    // Direct session replay: one batch, arrivals from time zero.
    let mut direct_session = Session::builder(SsdConfig::small_for_tests()).build();
    let run = trace.instantiate(&mut direct_session).unwrap();
    let outcomes = direct_session.submit_batch(&run.requests).unwrap();
    let mut direct = LatencyStats::new();
    for outcome in &outcomes {
        direct.record(outcome.summary.total_time);
    }

    for shards in [1usize, 4] {
        let mut fleet = Fleet::builder(SsdConfig::small_for_tests())
            .shards(shards)
            .build();
        let report = fleet.run_trace(&trace).unwrap();
        assert_eq!(report.served as usize, trace.records.len());
        assert_eq!(report.shed, 0);
        for p in [0.50, 0.99, 0.999] {
            assert_eq!(
                report.latency.percentile(p),
                direct.percentile(p),
                "fleet ({shards} shards) must reproduce the direct replay (p{p})"
            );
        }
        assert_eq!(report.latency.mean(), direct.mean());
    }
}
