//! End-to-end pipeline integration: scalar kernel → compile-time
//! vectorization → program registration → runtime offloading → summary.

use conduit::{Policy, RunOptions, RunRequest, RuntimeEngine, Session};
use conduit_types::{Duration, Energy, OpType, SsdConfig};
use conduit_vectorizer::{ArrayDecl, Expr, Kernel, Loop, Statement, Vectorizer};

/// A small mixed kernel: one vectorizable streaming loop, one multiply-heavy
/// loop, and one scalar region.
fn mixed_kernel() -> Kernel {
    let mut k = Kernel::new("pipeline");
    let a = k.declare_array(ArrayDecl::new("a", 16_384, 32));
    let b = k.declare_array(ArrayDecl::new("b", 16_384, 32));
    let c = k.declare_array(ArrayDecl::new("c", 16_384, 32));

    k.push_loop(Loop::new("bitwise", 16_384).with_statement(Statement::new(
        c.at(0),
        Expr::binary(OpType::Xor, Expr::load(a.at(0)), Expr::load(b.at(0))),
    )));
    k.push_loop(Loop::new("fma", 16_384).with_statement(Statement::new(
        c.at(0),
        Expr::binary(
            OpType::Add,
            Expr::binary(OpType::Mul, Expr::load(a.at(0)), Expr::load(b.at(0))),
            Expr::load(c.at(0)),
        ),
    )));
    k.push_loop(
        Loop::new("control", 8_192)
            .with_statement(Statement::new(
                a.at(0),
                Expr::binary(OpType::Add, Expr::load(a.at(0)), Expr::Const(1)),
            ))
            .with_complex_control_flow(),
    );
    k
}

fn session() -> Session {
    Session::builder(SsdConfig::small_for_tests()).build()
}

#[test]
fn kernel_to_summary_pipeline_works() {
    let out = Vectorizer::default().vectorize(&mixed_kernel()).unwrap();
    assert!(out.report.loops_vectorized >= 2);
    assert!(out.report.loops_scalar >= 1);
    assert!(out.report.vectorized_fraction > 0.5);

    let mut session = session();
    let instructions = out.program.len();
    let id = session.register(out.program).unwrap();
    let outcome = session
        .submit(&RunRequest::new(id, Policy::Conduit))
        .unwrap();
    let report = &outcome.summary;

    assert_eq!(report.instructions, instructions);
    assert_eq!(report.offload_mix.total() as usize, report.instructions);
    assert_eq!(report.latency.len(), report.instructions);
    assert!(report.total_time > Duration::ZERO);
    assert!(report.total_energy > Energy::ZERO);
    // The summary is the cheap report: no timeline unless asked for.
    assert!(outcome.artifacts.is_none());
    // The breakdown covers real work in every category for a mixed kernel
    // executed inside the SSD.
    assert!(report.breakdown.compute > Duration::ZERO);
    assert!(report.breakdown.total() > Duration::ZERO);
    // Scalar regions can only run on the controller cores, so ISP must have
    // received at least the scalar instructions.
    assert!(report.offload_mix.isp > 0);
}

#[test]
fn runs_are_deterministic() {
    let out = Vectorizer::default().vectorize(&mixed_kernel()).unwrap();
    let mut session = session();
    let id = session.register(out.program).unwrap();
    let request = RunRequest::new(id, Policy::Conduit).with_timeline();
    let a = session.submit(&request).unwrap();
    let b = session.submit(&request).unwrap();
    assert_eq!(a.summary.total_time, b.summary.total_time);
    assert_eq!(a.summary.total_energy, b.summary.total_energy);
    assert_eq!(a.summary.offload_mix, b.summary.offload_mix);
    assert_eq!(a.artifacts, b.artifacts);
}

#[test]
fn engine_can_be_driven_directly() {
    // The engine remains the low-level API underneath the session service:
    // it owns only the models and borrows the device per run, so the caller
    // controls the device's lifetime.
    let out = Vectorizer::default().vectorize(&mixed_kernel()).unwrap();
    let cfg = SsdConfig::small_for_tests();
    let engine = RuntimeEngine::new(&cfg);
    let mut device = conduit_sim::SsdDevice::new(&cfg).unwrap();
    engine.prepare(&mut device, &out.program).unwrap();
    let report = engine
        .run(
            &mut device,
            &out.program,
            &RunOptions::new(Policy::DmOffloading),
        )
        .unwrap();
    assert_eq!(report.policy, Policy::DmOffloading);
    // The device's energy meter and the report agree that energy was spent.
    assert!(device.energy_meter().total() > Energy::ZERO);
    // FTL saw the program's pages.
    assert!(device.ftl().stats().pages_mapped > 0);
    // The borrowed device exposes its cumulative state for inspection.
    assert!(device.snapshot().device_ops > 0);
}

#[test]
fn per_instruction_latencies_are_bounded_by_total_time() {
    let out = Vectorizer::default().vectorize(&mixed_kernel()).unwrap();
    let mut session = session();
    let id = session.register(out.program).unwrap();
    let report = session
        .submit(&RunRequest::new(id, Policy::Conduit).percentiles(&[0.5, 1.0]))
        .unwrap()
        .summary;
    let max = report.percentile(1.0);
    assert!(max <= report.total_time);
    assert!(report.percentile(0.5) <= max);
    // The requested percentile set is materialized in order.
    assert_eq!(report.percentiles.len(), 2);
    assert_eq!(report.percentiles[0].0, 0.5);
    assert_eq!(report.percentiles[1], (1.0, max));
}

#[test]
fn vector_width_ablation_changes_instruction_count_not_correctness() {
    let kernel = mixed_kernel();
    let wide = Vectorizer::default().vectorize(&kernel).unwrap();
    let narrow = conduit_vectorizer::Vectorizer::with_width(1024)
        .vectorize(&kernel)
        .unwrap();
    assert!(narrow.program.len() > wide.program.len());

    let mut session = session();
    let wide_id = session.register(wide.program).unwrap();
    let narrow_id = session.register(narrow.program).unwrap();
    let wide_report = session
        .submit(&RunRequest::new(wide_id, Policy::Conduit))
        .unwrap()
        .summary;
    let narrow_report = session
        .submit(&RunRequest::new(narrow_id, Policy::Conduit))
        .unwrap()
        .summary;
    assert!(wide_report.total_time > Duration::ZERO);
    assert!(narrow_report.total_time > Duration::ZERO);
}
