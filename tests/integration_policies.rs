//! Cross-policy integration: the qualitative relationships the paper's
//! evaluation reports must hold in the reproduction, exercised through the
//! session API's batched submission path.

use conduit::{gmean, Policy, RunRequest, RunSummary, Session};
use conduit_types::SsdConfig;
use conduit_workloads::{Scale, Workload};

fn run_all(workload: Workload, policies: &[Policy]) -> Vec<RunSummary> {
    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    let id = session
        .register(workload.program(Scale::test()).unwrap())
        .unwrap();
    let requests: Vec<RunRequest> = policies.iter().map(|&p| RunRequest::new(id, p)).collect();
    session
        .submit_batch(&requests)
        .unwrap()
        .into_iter()
        .map(|o| o.summary)
        .collect()
}

#[test]
fn ideal_upper_bounds_every_policy_on_every_workload() {
    for workload in Workload::ALL {
        let reports = run_all(
            workload,
            &[
                Policy::Ideal,
                Policy::Conduit,
                Policy::DmOffloading,
                Policy::IspOnly,
            ],
        );
        let ideal = &reports[0];
        for other in &reports[1..] {
            assert!(
                ideal.total_time <= other.total_time,
                "{workload}: Ideal ({}) slower than {} ({})",
                ideal.total_time,
                other.policy,
                other.total_time
            );
        }
    }
}

#[test]
fn conduit_beats_prior_offloading_policies_on_average() {
    let mut conduit_speedups = Vec::new();
    let mut dm_speedups = Vec::new();
    let mut bw_speedups = Vec::new();
    for workload in Workload::ALL {
        let reports = run_all(
            workload,
            &[
                Policy::HostCpu,
                Policy::BwOffloading,
                Policy::DmOffloading,
                Policy::Conduit,
            ],
        );
        let cpu = &reports[0];
        bw_speedups.push(reports[1].speedup_over(cpu));
        dm_speedups.push(reports[2].speedup_over(cpu));
        conduit_speedups.push(reports[3].speedup_over(cpu));
    }
    let conduit = gmean(&conduit_speedups);
    let dm = gmean(&dm_speedups);
    let bw = gmean(&bw_speedups);
    assert!(
        conduit > dm,
        "Conduit gmean speedup {conduit:.2} must exceed DM-Offloading {dm:.2}"
    );
    assert!(
        conduit > bw,
        "Conduit gmean speedup {conduit:.2} must exceed BW-Offloading {bw:.2}"
    );
    // Paper headline: Conduit outperforms CPU by ~4.2x; accept a generous
    // band since the substrate is a reimplementation.
    assert!(
        conduit > 1.5,
        "Conduit gmean speedup over CPU is only {conduit:.2}"
    );
}

#[test]
fn conduit_reduces_energy_versus_host_baselines() {
    let mut ratios = Vec::new();
    for workload in Workload::ALL {
        let reports = run_all(workload, &[Policy::HostCpu, Policy::Conduit]);
        ratios.push(reports[1].energy_vs(&reports[0]));
    }
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean_ratio < 0.8,
        "Conduit should cut energy vs CPU substantially, got ratio {mean_ratio:.2}"
    );
}

#[test]
fn single_resource_policies_are_dominated_by_adaptive_ones() {
    let mut conduit = Vec::new();
    let mut isp = Vec::new();
    for workload in Workload::ALL {
        let reports = run_all(
            workload,
            &[Policy::HostCpu, Policy::IspOnly, Policy::Conduit],
        );
        let cpu = &reports[0];
        isp.push(reports[1].speedup_over(cpu));
        conduit.push(reports[2].speedup_over(cpu));
    }
    assert!(gmean(&conduit) > gmean(&isp));
}

#[test]
fn offload_mix_tracks_workload_character() {
    // Figure 9: AES (bitwise, flash-resident, memory-bound) uses the
    // controller cores very sparingly and runs almost entirely on the
    // in-memory/in-flash substrates; under pure data-movement minimization
    // it goes to the flash chips. The multiply-heavy LLaMA2 inference avoids
    // IFP and splits between PuD-SSD and ISP.
    let aes = run_all(Workload::Aes, &[Policy::Conduit, Policy::DmOffloading]);
    let (isp_frac, pud_frac, ifp_frac, _) = aes[0].offload_mix.fractions();
    assert!(
        pud_frac + ifp_frac > 0.7,
        "AES under Conduit should run on the NDP substrates, got PuD {pud_frac:.2} + IFP {ifp_frac:.2}"
    );
    assert!(
        isp_frac < 0.3,
        "AES should use ISP sparingly, got {isp_frac:.2}"
    );
    let (_, _, dm_ifp, _) = aes[1].offload_mix.fractions();
    assert!(
        dm_ifp > 0.5,
        "AES under DM-Offloading should stay in flash, got {dm_ifp:.2}"
    );

    let llama = run_all(Workload::LlamaInference, &[Policy::Conduit]);
    let (llama_isp, pud_frac, ifp_frac, _) = llama[0].offload_mix.fractions();
    assert!(
        ifp_frac < 0.5,
        "LLaMA2 inference should avoid IFP for multiplies, got {ifp_frac:.2}"
    );
    assert!(
        pud_frac > 0.1,
        "LLaMA2 inference should use PuD-SSD, got {pud_frac:.2}"
    );
    assert!(
        llama_isp > 0.1,
        "LLaMA2 inference should also use ISP, got {llama_isp:.2}"
    );
}

#[test]
fn conduit_tail_latency_not_worse_than_dm_offloading() {
    // Figure 8: Conduit reduces 99th/99.99th percentile latencies versus the
    // prior offloading policies on LLaMA2 inference. Percentiles come off
    // the summary's constant-memory histogram — no timelines, no sorting.
    let reports = run_all(
        Workload::LlamaInference,
        &[Policy::Conduit, Policy::DmOffloading],
    );
    let (conduit, dm) = (&reports[0], &reports[1]);
    assert!(conduit.percentile(0.99) <= dm.percentile(0.99));
    assert!(conduit.percentile(0.9999) <= dm.percentile(0.9999));
}

#[test]
fn every_policy_completes_every_workload() {
    for workload in Workload::ALL {
        let program = workload.program(Scale::test()).unwrap();
        let instructions = program.len();
        let mut session = Session::builder(SsdConfig::small_for_tests()).build();
        let id = session.register(program).unwrap();
        let requests: Vec<RunRequest> = Policy::ALL
            .iter()
            .map(|&p| RunRequest::new(id, p))
            .collect();
        for (outcome, &policy) in session
            .submit_batch(&requests)
            .unwrap()
            .iter()
            .zip(Policy::ALL.iter())
        {
            assert_eq!(
                outcome.summary.instructions, instructions,
                "{workload} under {policy}"
            );
            assert!(
                outcome.summary.total_time.as_ns() > 0.0,
                "{workload} under {policy}"
            );
        }
    }
}
