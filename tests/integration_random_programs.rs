//! Property test for the batched-parallel run loop: seeded random vector
//! programs — mixed shapes, random cross-strip `Operand::Result`
//! references, random stores — must execute bit-identically under the
//! parallel (DAG-scheduled) path, the sequential-strips path, and the
//! scalar reference, on fresh and warm devices alike.
//!
//! The generator is a counted splitmix64 stream, so every failure is
//! reproducible from its program index alone.

use conduit::{Policy, RunRequest, Session};
use conduit_types::{InstId, LogicalPageId, OpType, Operand, SsdConfig, VectorInst, VectorProgram};

/// splitmix64: the same tiny deterministic generator the fault-injection
/// plans use — no dependency, uniform output, trivially seedable.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random but always-valid program: 4–23 instructions over the full op
/// set, ~25% chance per source operand of referencing an earlier result
/// (back-references freely cross strip boundaries, exercising the DAG
/// edges), ~1/6 chance of a store (exercising the warm-state prefix that
/// gates speculation), and occasional narrow element widths so strip
/// boundaries land on shape changes as well as op changes.
fn random_program(index: usize) -> VectorProgram {
    let mut rng = SplitMix64(0xc0ffee ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let n = 4 + rng.below(20) as usize;
    let mut prog = VectorProgram::new(format!("rand-{index}"));
    for i in 0..n {
        let op = OpType::ALL[rng.below(OpType::ALL.len() as u64) as usize];
        let mut srcs = Vec::with_capacity(op.arity());
        for _ in 0..op.arity() {
            if i > 0 && rng.below(4) == 0 {
                srcs.push(Operand::result(InstId::new(rng.below(i as u64) as u32)));
            } else {
                srcs.push(Operand::page(rng.below(64) * 4));
            }
        }
        let mut inst = VectorInst::with_srcs(i as u32, op, srcs);
        if rng.below(8) == 0 {
            inst.elem_bits = 8;
        }
        if rng.below(6) == 0 {
            inst.dst_page = Some(LogicalPageId::new(256 + rng.below(32) * 4));
        }
        prog.push(inst);
    }
    prog
}

#[test]
fn random_programs_run_bit_identically_in_every_mode() {
    const PROGRAMS: usize = 200;
    const POLICIES: [Policy; 3] = [Policy::Conduit, Policy::DmOffloading, Policy::IspOnly];

    let mut session = Session::builder(SsdConfig::small_for_tests())
        .workers(4)
        .build();
    // One warm-device trio per policy, aged in lockstep: every warm case
    // submits the same request to all three devices (one per mode), and the
    // asserted bit-identity is what keeps their streams identical for the
    // next case.
    let warm: Vec<[conduit::DeviceHandle; 3]> = POLICIES
        .iter()
        .enumerate()
        .map(|(pi, _)| {
            [
                session.create_device(&format!("rand-parallel-{pi}")),
                session.create_device(&format!("rand-sequential-{pi}")),
                session.create_device(&format!("rand-scalar-{pi}")),
            ]
        })
        .collect();

    for index in 0..PROGRAMS {
        let id = session.register(random_program(index)).unwrap();
        let policy = POLICIES[index % POLICIES.len()];
        let fresh = index % 2 == 0;
        let base = RunRequest::new(id, policy).timeline(true);
        let (parallel, sequential, scalar) = if fresh {
            (
                session.submit(&base.clone()).unwrap(),
                session.submit(&base.clone().sequential_strips()).unwrap(),
                session.submit(&base.scalar()).unwrap(),
            )
        } else {
            let [d_par, d_seq, d_sca] = warm[index % POLICIES.len()];
            (
                session.submit(&base.clone().on_device(d_par)).unwrap(),
                session
                    .submit(&base.clone().on_device(d_seq).sequential_strips())
                    .unwrap(),
                session.submit(&base.on_device(d_sca).scalar()).unwrap(),
            )
        };
        assert_eq!(
            parallel, sequential,
            "program {index} ({policy}, fresh={fresh}): parallel diverged from sequential strips"
        );
        assert_eq!(
            parallel, scalar,
            "program {index} ({policy}, fresh={fresh}): parallel diverged from scalar"
        );
    }

    // The warm trios must have aged identically, device state included.
    for (pi, trio) in warm.iter().enumerate() {
        let reference = session.device_snapshot(trio[0]);
        assert_eq!(
            reference,
            session.device_snapshot(trio[1]),
            "policy {pi}: parallel vs sequential warm aging diverged"
        );
        assert_eq!(
            reference,
            session.device_snapshot(trio[2]),
            "policy {pi}: parallel vs scalar warm aging diverged"
        );
    }
}
