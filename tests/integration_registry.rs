//! Program-registry persistence: vectorizer output serialized in one
//! process must deserialize in another and reproduce the exact same
//! results, and the byte format itself must not drift silently.
//!
//! The committed golden file (`tests/golden/registry_v1.bin`) pins the
//! byte-exact encoding of a canonical hand-built registry. If an intentional
//! format change breaks `golden_file_pins_the_serialization_format`, bump
//! `PROGRAM_FORMAT_VERSION` / `REGISTRY_FORMAT_VERSION` and regenerate the
//! file with:
//!
//! ```text
//! CONDUIT_REGEN_GOLDEN=1 cargo test --test integration_registry
//! ```

use conduit::{Policy, ProgramRegistry, RunRequest, Session};
use conduit_types::{
    InstMetadata, LogicalPageId, OpType, Operand, SsdConfig, VectorInst, VectorProgram,
};
use conduit_vectorizer::{ArrayDecl, Expr, Kernel, Loop, Statement, Vectorizer};
use conduit_workloads::{Scale, Workload};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("registry_v1.bin")
}

/// A deterministic, hand-built registry exercising every corner of the
/// format: every operation type, every operand kind, stores, non-default
/// lane/element widths, and all metadata fields.
fn canonical_registry() -> ProgramRegistry {
    let mut registry = ProgramRegistry::new();

    // Program 1: one instruction per OpType, arity-correct operands.
    let mut ops = VectorProgram::new("every-op");
    for (i, op) in OpType::ALL.into_iter().enumerate() {
        let srcs: Vec<Operand> = (0..op.arity())
            .map(|k| match k {
                0 => Operand::page((i as u64) * 8),
                1 if i > 0 => Operand::result((i - 1) as u32),
                _ => Operand::Immediate(k as i64 - 1),
            })
            .collect();
        ops.push(VectorInst::with_srcs(i as u32, op, srcs));
    }
    ops.vectorized_fraction = 0.75;
    registry.register(ops).expect("canonical program is valid");

    // Program 2: stores, odd widths, and full metadata.
    let mut stored = VectorProgram::new("stores-and-meta");
    let a = stored.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    stored.push(
        VectorInst::binary(1, OpType::Add, Operand::result(a), Operand::Immediate(-9))
            .lanes(2048)
            .elem_bits(8)
            .store_to(LogicalPageId::new(64))
            .meta(InstMetadata {
                loop_id: Some(3),
                strip_index: Some(1),
                reuse_hint: 4,
            }),
    );
    registry
        .register(stored)
        .expect("canonical program is valid");

    registry
}

/// The quickstart example's kernel, vectorized — a realistic compiler
/// artifact rather than a hand-built program.
fn quickstart_program() -> VectorProgram {
    let mut kernel = Kernel::new("quickstart");
    let a = kernel.declare_array(ArrayDecl::new("a", 65_536, 32));
    let b = kernel.declare_array(ArrayDecl::new("b", 65_536, 32));
    let c = kernel.declare_array(ArrayDecl::new("c", 65_536, 32));
    kernel.push_loop(Loop::new("body", 65_536).with_statement(Statement::new(
        c.at(0),
        Expr::binary(
            OpType::Add,
            Expr::binary(OpType::Xor, Expr::load(a.at(0)), Expr::load(b.at(0))),
            Expr::load(a.at(0)),
        ),
    )));
    Vectorizer::default()
        .vectorize(&kernel)
        .expect("quickstart kernel vectorizes")
        .program
}

#[test]
fn every_example_and_workload_program_roundtrips() {
    let mut programs = vec![quickstart_program()];
    for workload in Workload::ALL {
        programs.push(workload.program(Scale::test()).unwrap());
    }
    for program in programs {
        let bytes = program.to_bytes();
        let back = VectorProgram::from_bytes(&bytes).unwrap_or_else(|e| {
            panic!("{} failed to decode: {e}", program.name());
        });
        assert_eq!(back, program, "{} did not round-trip", program.name());
        // Serialization is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }
}

#[test]
fn registry_survives_process_boundary_and_reproduces_summaries() {
    // "Process" A: vectorize, register, run, export.
    let mut producer = Session::builder(SsdConfig::small_for_tests()).build();
    let quickstart = producer.register(quickstart_program()).unwrap();
    let jacobi = producer
        .register(Workload::Jacobi1d.program(Scale::test()).unwrap())
        .unwrap();
    let bytes = producer.export_registry();

    // "Process" B: a completely fresh session revives the registry from
    // bytes alone — no vectorizer, no workload generators.
    let mut consumer = Session::builder(SsdConfig::small_for_tests()).build();
    let ids = consumer.import_registry(&bytes).unwrap();
    assert_eq!(ids.len(), 2);

    for (original, imported) in [(quickstart, ids[0]), (jacobi, ids[1])] {
        assert_eq!(consumer.program(imported), producer.program(original));
        for policy in [Policy::HostCpu, Policy::Conduit, Policy::Ideal] {
            let a = producer.submit(&RunRequest::new(original, policy)).unwrap();
            let b = consumer.submit(&RunRequest::new(imported, policy)).unwrap();
            assert_eq!(
                a.summary, b.summary,
                "summary diverged after registry round-trip under {policy}"
            );
        }
    }
}

#[test]
fn golden_file_pins_the_serialization_format() {
    let bytes = canonical_registry().to_bytes();
    let path = golden_path();
    if std::env::var_os("CONDUIT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent")).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with CONDUIT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        committed, bytes,
        "serialized registry bytes drifted from tests/golden/registry_v1.bin — \
         if the format change is intentional, bump the format version and \
         regenerate with CONDUIT_REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_file_still_decodes() {
    let committed = std::fs::read(golden_path()).expect("golden file is committed");
    let registry = ProgramRegistry::from_bytes(&committed).unwrap();
    let expected = canonical_registry();
    assert_eq!(registry.len(), expected.len());
    for ((_, decoded), (_, built)) in registry.iter().zip(expected.iter()) {
        assert_eq!(decoded, built);
    }
    // Decoded golden programs actually run.
    let mut session = Session::builder(SsdConfig::small_for_tests()).build();
    let ids = session.import_registry(&committed).unwrap();
    let outcome = session
        .submit(&RunRequest::new(ids[1], Policy::Conduit))
        .unwrap();
    assert_eq!(outcome.summary.instructions, 2);
}
