//! Integration tests of the traffic subsystem: CTR1 trace stability,
//! corruption rejection, and replay determinism across worker-pool sizes.
//!
//! The committed golden file (`tests/golden/trace_v1.bin`) pins the CTR1
//! wire format. If an intentional format change breaks
//! `golden_trace_pins_the_wire_format`, bump
//! [`conduit_repro::traffic::TRACE_VERSION`] and regenerate:
//!
//! ```text
//! CONDUIT_REGEN_GOLDEN=1 cargo test --test integration_traffic
//! ```

use conduit_repro::core::{Policy, RunOutcome, Session};
use conduit_repro::traffic::{ArrivalSpec, TenantSpec, Trace, TrafficMix};
use conduit_repro::types::{Duration, SsdConfig};
use conduit_repro::workloads::{Scale, Workload};

/// The canonical mix frozen into the golden trace: one deterministic
/// victim, one Poisson tenant and one bursty antagonist, two of them
/// sharing a device. Do not change this mix without bumping the golden
/// file's name and `TRACE_VERSION` — it exists to keep the wire format
/// honest, not to be convenient.
fn golden_mix() -> TrafficMix {
    TrafficMix::new(Scale::test())
        .tenant(TenantSpec::new(
            "victim",
            "shared",
            Workload::Jacobi1d,
            Policy::Conduit,
            ArrivalSpec::Deterministic {
                interarrival: Duration::from_us(5.0),
                phase: Duration::from_us(1.0),
            },
        ))
        .tenant(TenantSpec::new(
            "background",
            "other",
            Workload::XorFilter,
            Policy::DmOffloading,
            ArrivalSpec::Poisson {
                mean_interarrival: Duration::from_us(7.0),
                seed: 0x90_1d_e4,
            },
        ))
        .tenant(TenantSpec::new(
            "antagonist",
            "shared",
            Workload::LlmTraining,
            Policy::HostCpu,
            ArrivalSpec::MarkovOnOff {
                burst_interarrival: Duration::from_us(2.0),
                mean_on: Duration::from_us(12.0),
                mean_off: Duration::from_us(12.0),
                seed: 0xB0_05_7E,
            },
        ))
}

fn golden_trace() -> Trace {
    golden_mix()
        .generate(Duration::from_us(60.0))
        .expect("the golden mix is valid")
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace_v1.bin")
}

/// Replays a trace on a session with the given worker count and returns the
/// outcomes.
fn replay(trace: &Trace, workers: Option<usize>) -> Vec<RunOutcome> {
    let mut builder = Session::builder(SsdConfig::small_for_tests());
    builder = match workers {
        None => builder.serial(),
        Some(w) => builder.workers(w),
    };
    let mut session = builder.build();
    let run = trace.instantiate(&mut session).expect("trace instantiates");
    session
        .submit_batch(&run.requests)
        .expect("replay succeeds")
}

#[test]
fn golden_trace_pins_the_wire_format() {
    let bytes = golden_trace().to_bytes();
    let path = golden_path();
    if std::env::var_os("CONDUIT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent")).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with CONDUIT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        bytes, committed,
        "CTR1 bytes drifted from tests/golden/trace_v1.bin — if the format \
         change is intentional, bump TRACE_VERSION and regenerate with \
         CONDUIT_REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_trace_still_decodes_and_reencodes() {
    let committed = std::fs::read(golden_path()).expect("golden file is committed");
    let decoded = Trace::from_bytes(&committed).expect("golden trace decodes");
    assert_eq!(decoded, golden_trace());
    assert_eq!(
        decoded.to_bytes(),
        committed,
        "decode → re-encode must be byte-identical"
    );
}

#[test]
fn every_single_word_corruption_is_rejected() {
    // Flip each 64-bit word of the golden file (and the trailing partial
    // word) one at a time: the trailing checksum covers the whole body, so
    // every corruption must deterministically fail to decode — never panic,
    // never silently yield a different trace.
    let committed = std::fs::read(golden_path()).expect("golden file is committed");
    assert!(Trace::from_bytes(&committed).is_ok());
    for word in 0..committed.len().div_ceil(8) {
        let mut corrupt = committed.clone();
        let start = word * 8;
        let end = (start + 8).min(corrupt.len());
        for b in &mut corrupt[start..end] {
            *b ^= 0xA5;
        }
        assert!(
            Trace::from_bytes(&corrupt).is_err(),
            "corrupting word {word} (bytes {start}..{end}) must be rejected"
        );
    }
}

#[test]
fn truncated_golden_trace_is_rejected_at_every_length() {
    let committed = std::fs::read(golden_path()).expect("golden file is committed");
    for len in 0..committed.len() {
        assert!(
            Trace::from_bytes(&committed[..len]).is_err(),
            "truncation to {len} bytes must be rejected"
        );
    }
}

#[test]
fn export_reimport_replays_byte_identically() {
    // Serialize, reload, and replay both traces on fresh sessions: the
    // outcome stream must match bit for bit (summaries carry latencies,
    // energy, placements and device deltas — PartialEq covers them all).
    let trace = golden_trace();
    let reloaded = Trace::from_bytes(&trace.to_bytes()).expect("roundtrip decodes");
    assert_eq!(trace, reloaded);
    let original = replay(&trace, None);
    let replayed = replay(&reloaded, None);
    assert_eq!(original.len(), replayed.len());
    for (a, b) in original.iter().zip(&replayed) {
        assert_eq!(a.summary, b.summary, "replay must be bit-identical");
    }
}

#[test]
fn trace_replay_is_identical_across_pool_sizes() {
    // The same trace replayed serially and on 2/4/8-worker pools must
    // produce identical outcome streams: lanes are deterministic FIFO state
    // machines regardless of how the scheduler interleaves them on real
    // CPU cores.
    let trace = golden_trace();
    let serial = replay(&trace, None);
    for workers in [2, 4, 8] {
        let pooled = replay(&trace, Some(workers));
        assert_eq!(serial.len(), pooled.len());
        for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
            assert_eq!(
                a.summary, b.summary,
                "request {i} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn generation_draw_counts_are_replayable() {
    // Counted-draw invariant at the mix level: generating the same mix
    // twice consumes identical randomness and yields identical traces, and
    // per-tenant record counts are stable.
    let a = golden_trace();
    let b = golden_trace();
    assert_eq!(a, b);
    for tenant in 0..3u16 {
        assert_eq!(a.tenant_records(tenant), b.tenant_records(tenant));
        assert!(
            a.tenant_records(tenant) > 0,
            "tenant {tenant} must contribute records to the golden trace"
        );
    }
}
