//! Warm-device mode: one persistent `DeviceState` threaded through a
//! request stream (a single named device from the session's pool).
//!
//! These tests pin down the three properties the warm refactor promises:
//!
//! 1. **State carries over**: the second request of a warm stream observes
//!    (and pays for) the FTL/coherence state the first request left behind,
//!    visible in its `RunSummary::device_delta`.
//! 2. **Determinism**: replaying the same warm request stream is
//!    bit-identical, including through `submit_batch` with fresh requests
//!    mixed in (parallel and serial paths agree).
//! 3. **Aging is modelled**: sustained write traffic on a small device
//!    eventually triggers garbage collection, and the wear spread stays
//!    bounded while every page remains translatable.
//!
//! Multi-device pool behaviour (named devices, lanes, scheduling,
//! arrivals, checkpoints) is covered by `tests/integration_device_pool.rs`.

use conduit::{Policy, RunOutcome, RunRequest, Session};
use conduit_types::{
    Duration, LogicalPageId, OpType, Operand, SsdConfig, VectorInst, VectorProgram,
};

/// A program that reads pages 0/4/8 and stores its result to page 12 —
/// every run dirties the destination pages at the executing resource.
fn writer_program() -> VectorProgram {
    let mut prog = VectorProgram::new("writer");
    let x = prog.push_binary(OpType::Xor, Operand::page(0), Operand::page(4));
    prog.push(
        VectorInst::binary(1, OpType::Add, Operand::result(x), Operand::page(8))
            .store_to(LogicalPageId::new(12)),
    );
    prog
}

/// A deliberately tiny flash array (64 physical pages) so sustained write
/// traffic exhausts the free pool quickly enough for GC to fire in a test.
fn tiny_cfg() -> SsdConfig {
    let mut cfg = SsdConfig::small_for_tests();
    cfg.flash.channels = 1;
    cfg.flash.dies_per_channel = 1;
    cfg.flash.planes_per_die = 1;
    cfg.flash.blocks_per_plane = 8;
    cfg.flash.pages_per_block = 8;
    cfg
}

#[test]
fn second_warm_request_observes_the_firsts_writes() {
    // Request 1 executes in SSD DRAM (PuD) and leaves its result pages
    // dirty there; request 2 is a host-side tenant, so the lazy coherence
    // protocol must flush request 1's dirty copies to flash before the
    // host's version of the pages can be recorded. On a fresh device the
    // same second request sees nothing to flush.
    let mut warm = Session::builder(SsdConfig::small_for_tests()).build();
    let id = warm.register(writer_program()).unwrap();
    let dev = warm.create_device("tenant");

    let first = warm
        .submit(&RunRequest::new(id, Policy::PudSsd).on_device(dev))
        .unwrap();
    assert!(
        first.summary.device_delta.coherence_writes > 0,
        "the store must be recorded in the coherence directory"
    );
    assert!(
        first.summary.device_delta.dirty_pages > 0,
        "request 1 must leave dirty pages behind"
    );
    assert_eq!(
        first.summary.device_delta.coherence_syncs, 0,
        "nothing to synchronize on a pristine device"
    );

    let second = warm
        .submit(&RunRequest::new(id, Policy::HostCpu).on_device(dev))
        .unwrap();
    assert!(
        second.summary.device_delta.coherence_syncs > 0,
        "request 2 must flush the dirty state request 1 left behind"
    );
    assert!(
        second.summary.device_delta.rewrites > 0,
        "each flush is an out-of-place flash rewrite"
    );

    // Control: the identical second request on a *fresh* device has no
    // earlier tenant to synchronize with.
    let mut fresh = Session::builder(SsdConfig::small_for_tests()).build();
    let fresh_id = fresh.register(writer_program()).unwrap();
    let control = fresh
        .submit(&RunRequest::new(fresh_id, Policy::HostCpu))
        .unwrap();
    assert_eq!(control.summary.device_delta.coherence_syncs, 0);

    // The cumulative snapshot agrees with the sum of the per-request
    // deltas, and the stream clock with the sum of the service times.
    let snap = warm.device_snapshot(dev);
    assert_eq!(
        snap.coherence_syncs,
        first.summary.device_delta.coherence_syncs + second.summary.device_delta.coherence_syncs
    );
    assert_eq!(
        snap.device_ops,
        first.summary.device_delta.device_ops + second.summary.device_delta.device_ops
    );
    assert_eq!(
        warm.device_clock(dev).as_ps(),
        first.summary.service_time.as_ps() + second.summary.service_time.as_ps()
    );
    // Closed-loop lane accounting: two requests, all busy, no idle gaps.
    assert_eq!(snap.lane_requests, 2);
    assert_eq!(
        snap.lane_busy_time,
        first.summary.service_time + second.summary.service_time
    );
    assert_eq!(snap.lane_idle_time, Duration::ZERO);
    assert_eq!(snap.lane_occupancy(), 1.0);
}

#[test]
fn warm_replay_of_the_same_stream_is_bit_identical() {
    let stream = |session: &mut Session| -> Vec<RunOutcome> {
        let id = session.register(writer_program()).unwrap();
        let dev = session.create_device("replay");
        [
            Policy::PudSsd,
            Policy::IspOnly,
            Policy::Conduit,
            Policy::HostCpu,
            Policy::PudSsd,
            Policy::Conduit,
        ]
        .into_iter()
        .map(|p| {
            session
                .submit(&RunRequest::new(id, p).on_device(dev))
                .unwrap()
        })
        .collect()
    };
    let mut a = Session::builder(SsdConfig::small_for_tests()).build();
    let mut b = Session::builder(SsdConfig::small_for_tests()).build();
    let run_a = stream(&mut a);
    let run_b = stream(&mut b);
    assert_eq!(run_a, run_b, "warm replay must be bit-identical");
    assert_eq!(
        a.device_snapshot(a.find_device("replay").unwrap()),
        b.device_snapshot(b.find_device("replay").unwrap())
    );
}

#[test]
fn mixed_batch_matches_serial_submission_in_request_order() {
    let requests = |id, dev| {
        vec![
            RunRequest::new(id, Policy::Conduit),
            RunRequest::new(id, Policy::PudSsd).on_device(dev),
            RunRequest::new(id, Policy::HostCpu),
            RunRequest::new(id, Policy::HostCpu).on_device(dev),
            RunRequest::new(id, Policy::Ideal),
            RunRequest::new(id, Policy::PudSsd).on_device(dev),
        ]
    };
    // Batched session: fresh requests fan out across 4 workers while the
    // warm ones run as one FIFO lane on the tenant device.
    let mut batched = Session::builder(SsdConfig::small_for_tests())
        .workers(4)
        .build();
    let id = batched.register(writer_program()).unwrap();
    let dev = batched.create_device("tenant");
    let batch = batched.submit_batch(&requests(id, dev)).unwrap();

    // Serial session: the same batch, executed one plan at a time on the
    // calling thread.
    let mut serial = Session::builder(SsdConfig::small_for_tests())
        .serial()
        .build();
    let serial_id = serial.register(writer_program()).unwrap();
    let serial_dev = serial.create_device("tenant");
    let one_by_one = serial
        .submit_batch(&requests(serial_id, serial_dev))
        .unwrap();

    assert_eq!(batch, one_by_one);
    assert_eq!(
        batched.device_snapshot(dev),
        serial.device_snapshot(serial_dev)
    );
    // The warm device really was shared: the host-side warm request had to
    // flush the dirty pages the PuD warm request before it left behind.
    assert!(batch[3].summary.device_delta.coherence_syncs > 0);
    // The lane's stream clock separates queueing from service: the first
    // warm request found the lane idle, the later ones queued behind it.
    assert_eq!(batch[1].summary.queueing_time, Duration::ZERO);
    assert_eq!(
        batch[3].summary.queueing_time,
        batch[1].summary.service_time
    );
    assert_eq!(
        batch[5].summary.queueing_time,
        batch[1].summary.service_time + batch[3].summary.service_time
    );

    // Submitting the same stream one request at a time produces the same
    // aging and service times; only the lane queueing differs (a lone
    // submit never waits).
    let mut lone = Session::builder(SsdConfig::small_for_tests()).build();
    let lone_id = lone.register(writer_program()).unwrap();
    let lone_dev = lone.create_device("tenant");
    for (request, from_batch) in requests(lone_id, lone_dev).iter().zip(&batch) {
        let outcome = lone.submit(request).unwrap();
        assert_eq!(
            outcome.summary.service_time,
            from_batch.summary.service_time
        );
        assert_eq!(outcome.summary.queueing_time, Duration::ZERO);
    }
    // Apart from the lane queueing accounting — and the lane window, which
    // is batch-scoped (a lone submit is a batch of one, so it covers only
    // the final request) — the devices aged identically.
    let batched_snap = batched.device_snapshot(dev);
    let mut lone_snap = lone.device_snapshot(lone_dev);
    assert!(lone_snap.lane_queued_time < batched_snap.lane_queued_time);
    lone_snap.lane_queued_time = batched_snap.lane_queued_time;
    assert_eq!(lone_snap.window_requests, 1);
    assert_eq!(lone_snap.window_queued_time, Duration::ZERO);
    lone_snap.window_requests = batched_snap.window_requests;
    lone_snap.window_busy_time = batched_snap.window_busy_time;
    lone_snap.window_idle_time = batched_snap.window_idle_time;
    lone_snap.window_queued_time = batched_snap.window_queued_time;
    assert_eq!(lone_snap, batched_snap);
}

#[test]
fn sustained_warm_writes_trigger_gc_and_keep_wear_bounded() {
    let mut session = Session::builder(tiny_cfg()).build();
    let dev = session.create_device("soak");
    let request_pud = RunRequest::inline(writer_program(), Policy::PudSsd).on_device(dev);
    let request_host = RunRequest::inline(writer_program(), Policy::HostCpu).on_device(dev);

    let mut gc_free_requests = 0u64;
    let mut first_gc_at = None;
    for round in 0..40 {
        // Alternating SSD-internal and host tenants makes every round flush
        // the previous round's dirty result pages: sustained out-of-place
        // write traffic.
        let a = session.submit(&request_pud).unwrap();
        let b = session.submit(&request_host).unwrap();
        let fired = a.summary.device_delta.gc_invocations + b.summary.device_delta.gc_invocations;
        if fired > 0 && first_gc_at.is_none() {
            first_gc_at = Some(round);
        }
        if fired == 0 {
            gc_free_requests += 2;
        }
    }

    let snap = session.device_snapshot(dev);
    assert!(
        snap.gc_invocations > 0 && snap.gc_blocks_erased > 0,
        "sustained write traffic must eventually wake the garbage collector: {snap:?}"
    );
    assert!(
        first_gc_at.expect("GC fired") > 0,
        "a warm device must absorb some traffic before GC is needed"
    );
    assert!(
        gc_free_requests > 0,
        "GC must not run on every request — only under free-pool pressure"
    );
    // Wear stays bounded: the spread between the most- and least-erased
    // block must not exceed the erases GC actually performed, and must stay
    // within the wear-leveling budget (the leveler tolerates a spread of 64
    // before migrating a cold block).
    assert!(snap.wear_spread <= snap.gc_blocks_erased);
    assert!(
        snap.wear_spread <= 64,
        "wear spread {} exceeded the leveling budget",
        snap.wear_spread
    );
    // The device is aged but healthy: every mapped page still translates,
    // so another request runs fine.
    assert!(session.submit(&request_pud).is_ok());
}

#[test]
fn fresh_mode_results_match_a_dedicated_session() {
    // A session that interleaves warm traffic must produce the exact same
    // fresh-mode outcomes as a session that never ran warm at all.
    let mut mixed = Session::builder(SsdConfig::small_for_tests()).build();
    let id = mixed.register(writer_program()).unwrap();
    let dev = mixed.create_device("noise");
    let fresh_request = RunRequest::new(id, Policy::Conduit);
    for _ in 0..4 {
        mixed.submit(&fresh_request.clone().on_device(dev)).unwrap();
    }
    let from_mixed = mixed.submit(&fresh_request).unwrap();

    let mut pristine = Session::builder(SsdConfig::small_for_tests()).build();
    let pid = pristine.register(writer_program()).unwrap();
    let from_pristine = pristine
        .submit(&RunRequest::new(pid, Policy::Conduit))
        .unwrap();

    assert_eq!(from_mixed, from_pristine);
}
