//! Workload-level integration: the six evaluated applications run end to end
//! under Conduit (via the session API) and their measured characteristics
//! keep the Table 3 shape.

use conduit::{CostFunction, Policy, RunRequest, Session};
use conduit_types::{Duration, Energy, SsdConfig};
use conduit_workloads::{characterize, Scale, Workload};

fn session() -> Session {
    Session::builder(SsdConfig::small_for_tests()).build()
}

#[test]
fn all_workloads_run_under_conduit() {
    let mut session = session();
    for workload in Workload::ALL {
        let program = workload.program(Scale::test()).unwrap();
        let instructions = program.len();
        let id = session.register(program).unwrap();
        let report = session
            .submit(&RunRequest::new(id, Policy::Conduit))
            .unwrap()
            .summary;
        assert_eq!(report.instructions, instructions, "{workload}");
        assert!(report.total_time > Duration::ZERO, "{workload}");
        assert!(report.total_energy > Energy::ZERO, "{workload}");
        assert!(report.overhead.count > 0, "{workload}");
        // §4.5: the per-instruction overhead averages a few microseconds and
        // never exceeds ~33 µs.
        assert!(
            report.overhead.mean() < Duration::from_us(10.0),
            "{workload}"
        );
        assert!(report.overhead.max <= Duration::from_us(40.0), "{workload}");
    }
    // One registry entry per workload: programs were vectorized exactly
    // once.
    assert_eq!(session.registry().len(), Workload::ALL.len());
}

#[test]
fn vectorizable_fraction_orders_workloads_like_table3() {
    // Table 3: heat-3d/jacobi-1d (95%) > LLaMA inference (70%) > training
    // (60%) > AES (65%)… the key qualitative fact is that the stencils are
    // the most vectorizable and the XOR filter is by far the least.
    let mut fractions = std::collections::HashMap::new();
    for workload in Workload::ALL {
        let program = workload.program(Scale::test()).unwrap();
        fractions.insert(workload, characterize(&program).vectorizable_pct);
    }
    assert!(fractions[&Workload::Heat3d] > fractions[&Workload::LlamaInference]);
    assert!(fractions[&Workload::Jacobi1d] > fractions[&Workload::LlmTraining]);
    for (w, f) in &fractions {
        if *w != Workload::XorFilter {
            assert!(
                f > &fractions[&Workload::XorFilter],
                "{w} should vectorize better than the XOR filter"
            );
        }
    }
}

#[test]
fn compute_heavy_workloads_gain_more_from_conduit_than_io_bound_ones() {
    // §6.1: Conduit's advantage over DM-Offloading is largest for the
    // compute-intensive workloads and smallest for the memory-bound ones.
    let mut session = session();

    let gain = |workload: Workload, session: &mut Session| {
        let id = session
            .register(workload.program(Scale::test()).unwrap())
            .unwrap();
        let dm = session
            .submit(&RunRequest::new(id, Policy::DmOffloading))
            .unwrap()
            .summary;
        let conduit = session
            .submit(&RunRequest::new(id, Policy::Conduit))
            .unwrap()
            .summary;
        conduit.speedup_over(&dm)
    };

    let heat = gain(Workload::Heat3d, &mut session);
    let aes = gain(Workload::Aes, &mut session);
    assert!(
        heat >= aes * 0.9,
        "compute-heavy heat-3d ({heat:.2}x) should benefit at least as much as AES ({aes:.2}x)"
    );
    assert!(
        heat >= 1.0,
        "Conduit should not lose to DM-Offloading on heat-3d"
    );
}

#[test]
fn disabling_the_cost_function_terms_changes_behaviour() {
    // Ablation: dropping the queueing-delay term makes Conduit behave more
    // like DM-Offloading and must not make it faster.
    let mut session = session();
    let id = session
        .register(Workload::Heat3d.program(Scale::test()).unwrap())
        .unwrap();

    let full = session
        .submit(&RunRequest::new(id, Policy::Conduit))
        .unwrap()
        .summary;
    let no_queue = session
        .submit(
            &RunRequest::new(id, Policy::Conduit).cost_function(CostFunction {
                include_queue_delay: false,
                ..CostFunction::conduit()
            }),
        )
        .unwrap()
        .summary;
    assert!(
        no_queue.total_time >= full.total_time,
        "removing queue awareness should not speed Conduit up (full {}, ablated {})",
        full.total_time,
        no_queue.total_time
    );
}

#[test]
fn paper_scale_llama_timeline_supports_figure_10() {
    // Figure 10 plots ~12000 instructions; make sure a larger-scale build
    // produces a timeline of that order without blowing up memory or time —
    // and that the timeline only materializes when the request opts in.
    let program = Workload::LlamaInference.program(Scale::new(4, 1)).unwrap();
    assert!(program.len() > 1_500, "len = {}", program.len());
    let mut session = Session::builder(SsdConfig::default()).build();
    let id = session.register(program).unwrap();

    let cheap = session
        .submit(&RunRequest::new(id, Policy::Conduit))
        .unwrap();
    assert!(cheap.artifacts.is_none());

    let full = session
        .submit(&RunRequest::new(id, Policy::Conduit).with_timeline())
        .unwrap();
    let timeline = &full.artifacts.expect("requested timeline").timeline;
    assert_eq!(timeline.len(), full.summary.instructions);
    // Opting in to artifacts must not change the summary.
    assert_eq!(cheap.summary, full.summary);
}
