//! Workload-level integration: the six evaluated applications run end to end
//! under Conduit and their measured characteristics keep the Table 3 shape.

use conduit::{Policy, RunOptions, Workbench};
use conduit_types::{Duration, Energy, SsdConfig};
use conduit_workloads::{characterize, Scale, Workload};

#[test]
fn all_workloads_run_under_conduit() {
    let mut bench = Workbench::new(SsdConfig::small_for_tests());
    for workload in Workload::ALL {
        let program = workload.program(Scale::test()).unwrap();
        let report = bench.run(&program, Policy::Conduit).unwrap();
        assert_eq!(report.instructions, program.len(), "{workload}");
        assert!(report.total_time > Duration::ZERO, "{workload}");
        assert!(report.energy.total() > Energy::ZERO, "{workload}");
        assert!(report.overhead.count > 0, "{workload}");
        // §4.5: the per-instruction overhead averages a few microseconds and
        // never exceeds ~33 µs.
        assert!(
            report.overhead.mean() < Duration::from_us(10.0),
            "{workload}"
        );
        assert!(report.overhead.max <= Duration::from_us(40.0), "{workload}");
    }
}

#[test]
fn vectorizable_fraction_orders_workloads_like_table3() {
    // Table 3: heat-3d/jacobi-1d (95%) > LLaMA inference (70%) > training
    // (60%) > AES (65%)… the key qualitative fact is that the stencils are
    // the most vectorizable and the XOR filter is by far the least.
    let mut fractions = std::collections::HashMap::new();
    for workload in Workload::ALL {
        let program = workload.program(Scale::test()).unwrap();
        fractions.insert(workload, characterize(&program).vectorizable_pct);
    }
    assert!(fractions[&Workload::Heat3d] > fractions[&Workload::LlamaInference]);
    assert!(fractions[&Workload::Jacobi1d] > fractions[&Workload::LlmTraining]);
    for (w, f) in &fractions {
        if *w != Workload::XorFilter {
            assert!(
                f > &fractions[&Workload::XorFilter],
                "{w} should vectorize better than the XOR filter"
            );
        }
    }
}

#[test]
fn compute_heavy_workloads_gain_more_from_conduit_than_io_bound_ones() {
    // §6.1: Conduit's advantage over DM-Offloading is largest for the
    // compute-intensive workloads and smallest for the memory-bound ones.
    let mut bench = Workbench::new(SsdConfig::small_for_tests());

    let gain = |workload: Workload, bench: &mut Workbench| {
        let program = workload.program(Scale::test()).unwrap();
        let dm = bench.run(&program, Policy::DmOffloading).unwrap();
        let conduit = bench.run(&program, Policy::Conduit).unwrap();
        conduit.speedup_over(&dm)
    };

    let heat = gain(Workload::Heat3d, &mut bench);
    let aes = gain(Workload::Aes, &mut bench);
    assert!(
        heat >= aes * 0.9,
        "compute-heavy heat-3d ({heat:.2}x) should benefit at least as much as AES ({aes:.2}x)"
    );
    assert!(
        heat >= 1.0,
        "Conduit should not lose to DM-Offloading on heat-3d"
    );
}

#[test]
fn disabling_the_cost_function_terms_changes_behaviour() {
    // Ablation: dropping the queueing-delay term makes Conduit behave more
    // like DM-Offloading and must not make it faster.
    let program = Workload::Heat3d.program(Scale::test()).unwrap();
    let mut bench = Workbench::new(SsdConfig::small_for_tests());

    let full = bench.run(&program, Policy::Conduit).unwrap();
    let no_queue = bench
        .run_with(
            &program,
            &RunOptions::new(Policy::Conduit).cost_function(conduit::CostFunction {
                include_queue_delay: false,
                ..conduit::CostFunction::conduit()
            }),
        )
        .unwrap();
    assert!(
        no_queue.total_time >= full.total_time,
        "removing queue awareness should not speed Conduit up (full {}, ablated {})",
        full.total_time,
        no_queue.total_time
    );
}

#[test]
fn paper_scale_llama_timeline_supports_figure_10() {
    // Figure 10 plots ~12000 instructions; make sure a larger-scale build
    // produces a timeline of that order without blowing up memory or time.
    let program = Workload::LlamaInference.program(Scale::new(4, 1)).unwrap();
    assert!(program.len() > 1_500, "len = {}", program.len());
    let mut bench = Workbench::new(SsdConfig::default());
    let report = bench.run(&program, Policy::Conduit).unwrap();
    assert_eq!(report.timeline.len(), program.len());
}
